//! The approximate query processor (§4): validates, unfolds, compiles, and
//! executes Alog programs over compact tables with superset semantics,
//! with multi-iteration **reuse** and **subset evaluation** (§5.2).
//!
//! Execution is **fault tolerant**: rule evaluation runs inside a panic
//! boundary and under a [`RunClock`], and any budget overflow, deadline
//! expiry, cancellation, or contained panic degrades just that rule — the
//! run still returns `Ok` with a superset-safe widened result and a
//! [`Degradation`] record in [`ExecStats`] (disable with
//! [`Limits::degrade`] ` = false` to get the old hard errors back).
//!
//! Execution is also **observable** (DESIGN.md §8): every run drives the
//! engine's [`iflex_obs::Registry`] — [`ExecStats`] is a per-run *view*
//! over that registry, filled at the end of each run — and, when the
//! engine's [`iflex_obs::Tracer`] is enabled, emits a span tree
//! `run → rule → operator → shard` into the shared trace journal. A
//! disabled tracer costs one relaxed atomic load per probe.

use crate::annotate::{apply_annotations_with, degraded_policy, AnnotatePolicy};
use crate::budget::{DegradeCause, RunBudget, RunClock};
use crate::eval::{
    candidates_budgeted, cells_may_equal, compare_cands, filter_cands, Cands, MayMust,
};
use crate::fault::{self, Fault, FaultPlan};
use crate::pfunc::{builtin_procs, ProcRegistry, Procedure};
use crate::plan::{compile_rule, CompileEnv, FusedOp, Operand, Plan, PlanError};
use crate::sample::Sample;
use iflex_alog::{
    evaluation_order, unfold, validate, Program, Rule, ValidateEnv, ValidateError,
};

use iflex_ctable::{Assignment, Cell, ColumnarTable, CompactTable, CompactTuple, Value};
use iflex_features::{FeatureError, FeatureRegistry};
use iflex_obs::{
    metrics::names, Counter, FlightRecorder, Histogram, LiveSet, Registry, SpanId, SpanKind,
    Tracer,
};
use iflex_text::{DocId, DocumentStore};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Enumeration / conversion budgets for superset-safe evaluation.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Max values enumerated from one cell for comparisons/filters.
    pub enum_cap: u64,
    /// Max value combinations per tuple for p-function evaluation.
    pub combo_cap: u64,
    /// Budget for a-table conversion in the exact ψ path.
    pub atable_budget: usize,
    /// Max tuples when fully expanding expansion cells (generators).
    pub expand_limit: usize,
    /// Max compact tuples any single operator may materialize; exceeding
    /// it raises [`EngineError::TooLarge`] (an unrefined join over the
    /// full input can otherwise explode).
    pub max_result_tuples: usize,
    /// Worker threads for the large join operators (1 = sequential).
    pub threads: usize,
    /// `(min, max)` clamp, in tuples, for the auto-tuned morsel size of
    /// the work-stealing executor (see [`crate::par`]). Each parallel
    /// section calibrates on its first `min` tuples and sizes later
    /// morsels to ~1ms of work within this clamp. `min` doubles as the
    /// serial threshold: inputs of at most `2 * min` tuples never engage
    /// the pool.
    pub morsel_tuples: (usize, usize),
    /// Which ψ implementation to use (ablation knob).
    pub annotate_policy: AnnotatePolicy,
    /// Disable to re-execute every rule on every run (ablation knob for
    /// the §5.2 reuse optimization).
    pub reuse_enabled: bool,
    /// Max values enumerated per cell for *comparison* operands. Smaller
    /// than `enum_cap`: beyond it the numeric-token fallback kicks in,
    /// which is exact for ordering comparisons and conservative for
    /// equality — crucial when comparing unrefined cells across a large
    /// join.
    pub cmp_enum_cap: u64,
    /// Degrade gracefully (the default): a rule that overruns a budget,
    /// hits the deadline, is cancelled, or panics is replaced by a
    /// superset-safe widened result and recorded in
    /// [`ExecStats::degradations`]. With `false` (strict mode) those
    /// conditions surface as hard [`EngineError`]s as in earlier versions.
    pub degrade: bool,
    /// Serve feature `Verify`/`Refine` calls from the shared
    /// [`FeatureMemo`](crate::FeatureMemo) (ablation knob; disabling it
    /// restores the recompute-every-call behavior).
    pub use_feature_memo: bool,
    /// Run the incremental re-execution engine (DESIGN.md §9): fingerprint
    /// rules, version relations, and serve unchanged rule results from the
    /// [`crate::incr::IncrCache`] across iterations and simulation probes.
    /// Disabling it (ablation knob) re-executes every rule on every run —
    /// no lookups, no inserts, no cone invalidation.
    pub use_incremental: bool,
    /// Programmatic switch for the structured trace journal: sessions
    /// enable the engine's [`Tracer`] when this is set *or* the
    /// `IFLEX_TRACE` environment variable requests a dump (see
    /// `iflex::Session`). The engine itself only journals through
    /// [`Engine::tracer`]; this flag exists so embedding code can opt in
    /// without touching the environment.
    pub trace: bool,
    /// Run each compiled rule plan through the logical-plan optimizer
    /// (DESIGN.md §11): σ pushdown below joins, selectivity-driven
    /// reordering, join orientation, and fusion of adjacent selection /
    /// projection operators into single batch passes. Every rewrite
    /// preserves results byte-for-byte, so this is a pure ablation knob;
    /// incremental-cache fingerprints hash the *pre-optimization* rule and
    /// stay valid either way.
    pub use_optimizer: bool,
    /// Run batch selection operators over the columnar compact-table core
    /// (DESIGN.md §14): stable inputs are converted once per allocation
    /// (on second sight — per-iteration scratch tables keep the row loop)
    /// into the struct-of-arrays [`iflex_ctable::ColumnarTable`] (shared
    /// via [`crate::incr::ColumnarShare`]), morsels slice contiguous
    /// column runs, and each run's *distinct* cells are constrained once
    /// through the batch `Verify`/`Refine` path. Pure ablation knob (default on):
    /// results, `StopReason`s, and degradation records are byte-identical
    /// to the row core — asserted end-to-end by `exp_scaling
    /// --plan-report` and the `prop_batch` property suite. The row path
    /// stays alive for one release behind `use_columnar = false`.
    pub use_columnar: bool,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            enum_cap: 4096,
            combo_cap: 65_536,
            atable_budget: 500_000,
            expand_limit: 65_536,
            max_result_tuples: 2_000_000,
            cmp_enum_cap: 64,
            threads: default_threads(),
            morsel_tuples: (16, 65_536),
            annotate_policy: AnnotatePolicy::default(),
            reuse_enabled: true,
            degrade: true,
            use_feature_memo: true,
            use_incremental: true,
            trace: false,
            use_optimizer: true,
            use_columnar: true,
        }
    }
}

/// The default worker-thread count: the `IFLEX_THREADS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism capped at 8. `IFLEX_THREADS=1` forces fully
/// serial execution. An invalid value (non-numeric, zero, or not UTF-8)
/// falls back to the machine default — and warns once on stderr with the
/// offending value, so a typo'd knob never degrades silently.
pub fn default_threads() -> usize {
    let machine_default = || {
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    };
    match std::env::var("IFLEX_THREADS") {
        Ok(v) => match parse_threads_value(&v) {
            Some(n) => n,
            None => {
                let d = machine_default();
                warn_knob_once(&format!(
                    "iflex: ignoring invalid IFLEX_THREADS={v:?} \
                     (expected a positive integer); using default {d}"
                ));
                d
            }
        },
        Err(std::env::VarError::NotPresent) => machine_default(),
        Err(std::env::VarError::NotUnicode(raw)) => {
            let d = machine_default();
            warn_knob_once(&format!(
                "iflex: ignoring invalid IFLEX_THREADS={raw:?} \
                 (not valid UTF-8); using default {d}"
            ));
            d
        }
    }
}

/// `IFLEX_THREADS` value parsing, factored out for tests: a positive
/// integer (surrounding whitespace tolerated) or nothing.
pub(crate) fn parse_threads_value(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Emits an env-knob warning exactly once per process (the knobs are read
/// once per engine/session construction; repeating the warning per engine
/// would drown real diagnostics).
fn warn_knob_once(msg: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| eprintln!("{msg}"));
}

/// Warns once per process when the optimizer is ablated while the
/// incremental cache stays on. The combination is *valid* — rule
/// fingerprints hash the pre-optimization unfolded rule (see
/// [`crate::plan::rule_fingerprint`]), and every optimizer rewrite is
/// byte-exact, so cache entries remain shareable between optimized and
/// unoptimized executions — but a warm shared cache can serve results
/// that were computed by an optimized engine, which skews A/B *timing*
/// comparisons. Its own `Once`: [`warn_knob_once`] fires for the first
/// knob warning of any kind and would swallow this one.
fn warn_optimizer_off_incremental_on() {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "iflex: use_optimizer=false with use_incremental=true — cache entries \
             stay valid and shareable (fingerprints hash the pre-optimization rule), \
             but warm entries may have been produced by an optimized engine; disable \
             use_incremental too for a clean ablation timing"
        );
    });
}

/// One graceful-degradation event: a rule whose evaluation could not be
/// completed exactly and was replaced by a superset-safe widened result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The rule (rendered) whose evaluation degraded.
    pub rule: String,
    /// Why it degraded.
    pub cause: DegradeCause,
    /// The fault-injection site (see [`crate::fault::site`]) whose armed
    /// fault produced this degradation, when one fired; `None` for organic
    /// degradations (real budget overflows, deadlines, panics).
    pub site: Option<String>,
    /// What was truncated (the original error rendered).
    pub truncated: String,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.cause, self.rule, self.truncated)?;
        if let Some(site) = &self.site {
            write!(f, " (site: {site})")?;
        }
        Ok(())
    }
}

/// Execution statistics (reuse, work done); reset per `run`.
///
/// Since the observability refactor this is a **view** over the engine's
/// [`Registry`]: operators increment registry counters (through handles
/// cached in [`EngineCounters`]) while a run executes, and the numeric
/// fields below are filled from the registry when the run finishes — on
/// every exit path, success or error. `degradations` is the one field
/// still carried directly (it holds structured records, not numbers);
/// the registry mirrors its count as `engine.degradations` plus
/// per-cause `engine.degradations.<cause>` counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rules actually (re)computed this run.
    pub rules_evaluated: usize,
    /// Rules served from the reuse cache this run.
    pub cache_hits: usize,
    /// Extensional tuples scanned this run.
    pub tuples_scanned: usize,
    /// Possible-value volume across *all* pre-projection extraction
    /// results of the last run — the "assignments produced by the
    /// extraction process" signal the §5.1 convergence monitor watches.
    /// Value counts (not raw assignment counts) are used because refining
    /// `contain(s)` to `exact(v)` keeps the assignment count at one while
    /// strictly shrinking the encoded value set.
    pub assignments_produced: usize,
    /// Rules degraded this run (empty for an exact run).
    pub degradations: Vec<Degradation>,
    /// Feature-memo (`Verify`/`Refine`) cache hits this run.
    pub feature_cache_hits: usize,
    /// Feature-memo cache misses this run.
    pub feature_cache_misses: usize,
    /// Parallel operator sections that actually fanned out to worker
    /// threads this run (small inputs fall back to in-thread shards and
    /// are not counted).
    pub par_sections: usize,
    /// Accumulated per-participant busy wall-clock (µs), indexed by
    /// participant position (0 = the calling thread). Participant `i`
    /// aggregates its busy time across every parallel section, so a
    /// skewed distribution shows up as a lopsided vector. Panicked
    /// participants still report the time burned up to the panic.
    pub shard_busy_us: Vec<u64>,
    /// Morsels (index ranges) dispensed by the work-stealing executor
    /// this run, including each section's calibration morsel.
    pub par_morsels: u64,
    /// Morsels a participant stole from another participant's segment
    /// this run.
    pub par_steals: u64,
    /// Wall-clock spent claiming/stealing morsel ranges this run, in µs.
    pub par_dispense_us: u64,
    /// Incremental-cache hits this run (equals `cache_hits` while the
    /// incremental engine is on; zero when `use_incremental` is off).
    pub incr_hits: usize,
    /// Incremental-cache misses this run (rules that fell through to
    /// evaluation while the incremental engine was on).
    pub incr_misses: usize,
    /// Entries evicted by dependency-cone invalidation at run start.
    pub incr_invalidations: usize,
}

impl ExecStats {
    /// True when at least one rule degraded this run.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// True when some degradation this run had the given cause.
    pub fn degraded_by(&self, cause: DegradeCause) -> bool {
        self.degradations.iter().any(|d| d.cause == cause)
    }
}

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// The program failed static validation.
    Validation(Vec<ValidateError>),
    /// A rule could not be compiled into a plan.
    Plan(PlanError),
    /// A feature rejected its argument or is unknown.
    Feature(FeatureError),
    /// An operator exceeded a materialization/enumeration budget.
    TooLarge(String),
    /// An extensional or intensional relation was not found.
    MissingTable(String),
    /// A registered procedure was used incorrectly.
    BadProcedure(String),
    /// The run's wall-clock deadline expired (strict mode only; with
    /// [`Limits::degrade`] the engine degrades instead).
    Deadline,
    /// The run was cancelled through its [`crate::CancelToken`] (strict
    /// mode only).
    Cancelled,
    /// A rule's evaluation panicked; the panic was contained at the rule
    /// boundary (strict mode only).
    RulePanic(String),
    /// An internal invariant failed (a bug surfaced as an error rather
    /// than a panic).
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Validation(errs) => {
                write!(f, "program validation failed:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            EngineError::Plan(e) => write!(f, "plan error: {e}"),
            EngineError::Feature(e) => write!(f, "feature error: {e}"),
            EngineError::TooLarge(what) => write!(f, "budget exceeded: {what}"),
            EngineError::MissingTable(name) => write!(f, "no such table: {name}"),
            EngineError::BadProcedure(name) => write!(f, "bad procedure use: {name}"),
            EngineError::Deadline => write!(f, "run deadline expired"),
            EngineError::Cancelled => write!(f, "run cancelled"),
            EngineError::RulePanic(msg) => write!(f, "rule evaluation panicked: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            EngineError::Feature(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DegradeCause> for EngineError {
    fn from(c: DegradeCause) -> Self {
        match c {
            DegradeCause::Budget => EngineError::TooLarge("run budget".into()),
            DegradeCause::Deadline => EngineError::Deadline,
            DegradeCause::Cancelled => EngineError::Cancelled,
            DegradeCause::RulePanic => EngineError::RulePanic("(injected)".into()),
        }
    }
}

/// The degradation cause a recoverable error maps to; `None` for semantic
/// errors (validation, planning, unknown tables) that degrade mode must
/// still surface as hard errors.
pub fn degrade_cause(e: &EngineError) -> Option<DegradeCause> {
    match e {
        EngineError::TooLarge(_) => Some(DegradeCause::Budget),
        EngineError::Deadline => Some(DegradeCause::Deadline),
        EngineError::Cancelled => Some(DegradeCause::Cancelled),
        EngineError::RulePanic(_) => Some(DegradeCause::RulePanic),
        _ => None,
    }
}

/// Renders a contained panic payload (`&str` / `String` payloads; anything
/// else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Converts an injected engine-site fault into its error (panics for
/// [`Fault::Panic`] — deliberately, so the real containment path runs).
pub(crate) fn injected(f: Fault) -> EngineError {
    match f {
        Fault::TooLarge => EngineError::TooLarge("injected fault".into()),
        Fault::DeadlineExpired => EngineError::Deadline,
        Fault::Panic(msg) => panic!("injected fault: {msg}"),
        Fault::Io(msg) => EngineError::Internal(format!("injected i/o fault: {msg}")),
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<FeatureError> for EngineError {
    fn from(e: FeatureError) -> Self {
        EngineError::Feature(e)
    }
}

/// Stable operator names for spans and per-operator metrics
/// (`engine.op.<name>.us` / `engine.op.<name>.tuples_out`), indexed by
/// [`op_idx`]. Static so the hot path never formats a name.
const OP_NAMES: [&str; 12] = [
    "scan_ext",
    "scan_rel",
    "from_extract",
    "constraint",
    "compare",
    "var_unify",
    "filter_proc",
    "generate_proc",
    "cross_join",
    "project",
    "annotate",
    "fused",
];

/// The [`OP_NAMES`] index of a plan node.
fn op_idx(plan: &Plan) -> usize {
    match plan {
        Plan::ScanExt { .. } => 0,
        Plan::ScanRel { .. } => 1,
        Plan::FromExtract { .. } => 2,
        Plan::Constraint { .. } => 3,
        Plan::Compare { .. } => 4,
        Plan::VarUnify { .. } => 5,
        Plan::FilterProc { .. } => 6,
        Plan::GenerateProc { .. } => 7,
        Plan::CrossJoin { .. } => 8,
        Plan::Project { .. } => 9,
        Plan::Annotate { .. } => 10,
        Plan::Fused { .. } => 11,
    }
}

/// Metric handles the engine updates on hot paths, resolved once at
/// construction so no per-call registry lookup (or name formatting) ever
/// happens during a run. Handles stay valid across [`Registry::reset`].
struct EngineCounters {
    rules_evaluated: Counter,
    cache_hits: Counter,
    tuples_scanned: Counter,
    assignments_produced: Counter,
    degradations: Counter,
    feature_cache_hits: Counter,
    feature_cache_misses: Counter,
    par_sections: Counter,
    par_morsels: Counter,
    par_steals: Counter,
    par_dispense_us: Counter,
    incr_hits: Counter,
    incr_misses: Counter,
    incr_invalidations: Counter,
    /// Per-operator inclusive wall-clock (µs), indexed by [`op_idx`].
    /// Self time = inclusive − Σ direct children; `exp_trace` computes it
    /// from the span tree.
    op_us: Vec<Histogram>,
    /// Per-operator output tuples, indexed by [`op_idx`].
    op_tuples: Vec<Counter>,
    /// Logical-plan optimizer activity (DESIGN.md §11).
    opt_plans: Counter,
    opt_pushdowns: Counter,
    opt_reorders: Counter,
    opt_join_flips: Counter,
    opt_fused_nodes: Counter,
    opt_fused_steps: Counter,
    /// Estimated vs. actual per-rule selectivity, in basis points.
    opt_est_sel_bp: Histogram,
    opt_act_sel_bp: Histogram,
}

impl EngineCounters {
    fn new(reg: &Registry) -> Self {
        EngineCounters {
            rules_evaluated: reg.counter(names::RULES_EVALUATED),
            cache_hits: reg.counter(names::CACHE_HITS),
            tuples_scanned: reg.counter(names::TUPLES_SCANNED),
            assignments_produced: reg.counter(names::ASSIGNMENTS_PRODUCED),
            degradations: reg.counter(names::DEGRADATIONS),
            feature_cache_hits: reg.counter(names::FEATURE_CACHE_HITS),
            feature_cache_misses: reg.counter(names::FEATURE_CACHE_MISSES),
            par_sections: reg.counter(names::PAR_SECTIONS),
            par_morsels: reg.counter(names::PAR_MORSELS),
            par_steals: reg.counter(names::PAR_STEALS),
            par_dispense_us: reg.counter(names::PAR_DISPENSE_US),
            incr_hits: reg.counter(names::INCR_HITS),
            incr_misses: reg.counter(names::INCR_MISSES),
            incr_invalidations: reg.counter(names::INCR_INVALIDATIONS),
            op_us: OP_NAMES
                .iter()
                .map(|n| reg.histogram(&format!("{}{n}.us", names::OP_US_PREFIX)))
                .collect(),
            op_tuples: OP_NAMES
                .iter()
                .map(|n| {
                    reg.counter(&format!(
                        "{}{n}{}",
                        names::OP_US_PREFIX,
                        names::OP_TUPLES_SUFFIX
                    ))
                })
                .collect(),
            opt_plans: reg.counter(names::OPT_PLANS),
            opt_pushdowns: reg.counter(names::OPT_PUSHDOWNS),
            opt_reorders: reg.counter(names::OPT_REORDERS),
            opt_join_flips: reg.counter(names::OPT_JOIN_FLIPS),
            opt_fused_nodes: reg.counter(names::OPT_FUSED_NODES),
            opt_fused_steps: reg.counter(names::OPT_FUSED_STEPS),
            opt_est_sel_bp: reg.histogram(names::OPT_EST_SEL_BP),
            opt_act_sel_bp: reg.histogram(names::OPT_ACT_SEL_BP),
        }
    }
}

/// The shareable core of an engine: everything concurrent sessions over
/// the same corpus can safely share, split out from the per-session parts
/// they must **not** share.
///
/// Shared (by reference count): the immutable [`DocumentStore`], the
/// extensional tables, the feature/procedure registries, the sharded
/// `Verify`/`Refine` [`FeatureMemo`](crate::FeatureMemo), and a warm
/// [`IncrCache`](crate::IncrCache) of rule results. Sharing the caches is
/// observationally invisible: every entry is a pure function of its key,
/// and degraded (widened) results are never inserted — so a session can
/// never observe another session's faults through them.
///
/// Per-session (fresh on every [`EngineCore::fork`]): the fault plan, the
/// run budget and its cancellation token, the run clock, the metrics
/// registry, and the tracer. This is the bulkhead boundary the
/// multi-session service builds on: a fork that panics, degrades, or
/// exhausts its budget cannot perturb a sibling fork.
pub struct EngineCore {
    store: Arc<DocumentStore>,
    features: FeatureRegistry,
    procs: ProcRegistry,
    ext: BTreeMap<String, Arc<CompactTable>>,
    memo: Arc<crate::memo::FeatureMemo>,
    /// Warm rule-result entries; forks start from a clone and may publish
    /// clean entries back through [`EngineCore::publish`].
    incr: std::sync::Mutex<crate::incr::IncrCache>,
    /// Shared columnar conversions (keyed by row-table allocation): forks
    /// running over the same extensional tables and warm incremental
    /// entries reuse one conversion (DESIGN.md §14).
    colshare: Arc<crate::incr::ColumnarShare>,
    epoch: u64,
    limits: Limits,
}

impl EngineCore {
    /// Forks a fresh engine off the shared core: read-only inputs and the
    /// feature memo are shared by `Arc`, the incremental cache starts from
    /// a clone of the core's warm entries, and every isolation-relevant
    /// part — fault plan, budget, clock, metrics, tracer — is brand new.
    pub fn fork(&self) -> Engine {
        let metrics = Registry::new();
        let counters = EngineCounters::new(&metrics);
        let incr = self
            .incr
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        Engine {
            store: Arc::clone(&self.store),
            features: self.features.clone(),
            procs: self.procs.clone(),
            ext: self.ext.clone(),
            incr,
            colshare: Arc::clone(&self.colshare),
            epoch: self.epoch,
            limits: self.limits,
            stats: ExecStats::default(),
            budget: RunBudget::unlimited(),
            fault: Arc::new(FaultPlan::disarmed()),
            clock: Arc::new(RunClock::unlimited()),
            memo: Arc::clone(&self.memo),
            proc_sigs_cache: std::sync::OnceLock::new(),
            metrics,
            tracer: Tracer::disabled(),
            trace_parent: SpanId::NONE,
            counters,
            live: LiveSet::disabled(),
            flight: FlightRecorder::disabled(),
            pool: None,
        }
    }

    /// Folds a fork's incremental-cache entries back into the shared core
    /// so later forks start warm. Existing entries win (both engines
    /// computed the same pure results), and the whole call is refused —
    /// returning `false` — when the fork has diverged from the core
    /// (registry mutations bump the epoch), so a session that redefined
    /// procedures or features can never pollute its siblings.
    pub fn publish(&self, engine: &Engine) -> bool {
        if engine.epoch != self.epoch {
            return false;
        }
        self.incr
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .absorb(engine.incr.clone());
        true
    }

    /// The shared document store.
    pub fn store(&self) -> &Arc<DocumentStore> {
        &self.store
    }

    /// How many warm rule-result entries forks currently start from.
    pub fn warm_entries(&self) -> usize {
        self.incr
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// The limits forks inherit.
    pub fn limits(&self) -> Limits {
        self.limits
    }
}

/// The iFlex approximate query processor.
pub struct Engine {
    store: Arc<DocumentStore>,
    features: FeatureRegistry,
    procs: ProcRegistry,
    ext: BTreeMap<String, Arc<CompactTable>>,
    /// The incremental re-execution cache (§5.2 reuse, generalized in
    /// DESIGN.md §9): per-rule results keyed by `(relation, sample,
    /// fingerprint, input versions)`, with dependency-cone invalidation
    /// at run start.
    incr: crate::incr::IncrCache,
    /// Shared columnar conversions of row tables (DESIGN.md §14), keyed by
    /// allocation so incremental-cache hits and extensional scans reuse
    /// one conversion across runs; shared with snapshots and core forks.
    colshare: Arc<crate::incr::ColumnarShare>,
    epoch: u64,
    /// The limits.
    pub limits: Limits,
    /// The stats.
    pub stats: ExecStats,
    /// Wall-clock/cancellation budget applied to every run.
    pub budget: RunBudget,
    /// Fault-injection plan (disarmed by default; tests arm it). Shared
    /// with snapshots so per-site hit counts are global: a fault armed
    /// `Nth` fires exactly once no matter which worker reaches it.
    pub fault: Arc<FaultPlan>,
    /// The clock of the current (or last) run; `Arc` so snapshots and
    /// worker threads observe this engine's deadline/cancellation.
    clock: Arc<RunClock>,
    /// Shared `Verify`/`Refine` memo (see [`crate::memo`]); one instance
    /// serves this engine, its snapshots, and every worker thread.
    memo: Arc<crate::memo::FeatureMemo>,
    /// Lazily computed procedure signatures, reset whenever the
    /// procedure or feature registries are touched mutably.
    proc_sigs_cache: std::sync::OnceLock<Arc<BTreeMap<String, (bool, usize)>>>,
    /// The metrics registry this engine's runs drive. Per-engine (a
    /// snapshot gets its own), reset at the start of every run;
    /// [`Engine::stats`] is filled from it when a run finishes.
    pub metrics: Registry,
    /// The structured trace journal. Disabled by default (one relaxed
    /// atomic load per probe); sessions enable it per `IFLEX_TRACE` /
    /// [`Limits::trace`]. Snapshots clone the handle, so every worker
    /// appends to one shared journal.
    pub tracer: Tracer,
    /// Parent span for the next run's `run` span: the session sets this to
    /// its current iteration/question/probe span so engine spans nest
    /// under the assistant timeline. [`SpanId::NONE`] (the default) makes
    /// runs top-level spans.
    pub trace_parent: SpanId,
    /// Cached metric handles (see [`EngineCounters`]).
    counters: EngineCounters,
    /// Live windowed/quantile telemetry that **survives the per-run
    /// registry reset**: run latency (window + p50/p95/p99 sketch under
    /// [`names::RUN_US`]), a degradation-rate window, and per-shard busy
    /// windows. Disabled by default — one relaxed atomic load per probe;
    /// the service wires a per-session set in so every engine run feeds
    /// that tenant's scoped metrics.
    pub live: LiveSet,
    /// Always-on bounded flight recorder. Disabled by default; the
    /// service shares its per-session ring so degradations inside engine
    /// runs land next to the session's request history when a dump
    /// triggers.
    pub flight: FlightRecorder,
    /// The current run's worker pool: created (cheap, no threads yet) at
    /// the start of every run, spawned lazily by the first
    /// parallel-worthy section, reused by every later section of the run,
    /// and joined at run end. `None` between runs; snapshots and forks
    /// build their own.
    pool: Option<crate::par::RunPool>,
}

impl Engine {
    /// A new engine over `store` with the default feature set and the
    /// built-in `similar`/`approxMatch` procedures.
    pub fn new(store: Arc<DocumentStore>) -> Self {
        let metrics = Registry::new();
        let counters = EngineCounters::new(&metrics);
        Engine {
            store,
            features: FeatureRegistry::default(),
            procs: builtin_procs(),
            ext: BTreeMap::new(),
            incr: crate::incr::IncrCache::new(),
            colshare: Arc::new(crate::incr::ColumnarShare::new()),
            epoch: 0,
            limits: Limits::default(),
            stats: ExecStats::default(),
            budget: RunBudget::unlimited(),
            fault: Arc::new(FaultPlan::disarmed()),
            clock: Arc::new(RunClock::unlimited()),
            memo: Arc::new(crate::memo::FeatureMemo::new()),
            proc_sigs_cache: std::sync::OnceLock::new(),
            metrics,
            tracer: Tracer::disabled(),
            trace_parent: SpanId::NONE,
            counters,
            live: LiveSet::disabled(),
            flight: FlightRecorder::disabled(),
            pool: None,
        }
    }

    /// A cheap concurrent-execution snapshot: shares the document store,
    /// extensional tables, reuse-cache entries, feature memo, fault plan,
    /// and the *current* run clock by reference count, with fresh stats
    /// and a fresh metrics registry (a snapshot's runs never perturb this
    /// engine's metrics). The trace journal **is** shared — snapshot spans
    /// land in the same timeline, nested under [`Engine::trace_parent`]
    /// (which the snapshot inherits). Running a program on the snapshot
    /// never mutates this engine; results computed by the snapshot can be
    /// folded back with [`Engine::absorb_cache`].
    pub fn snapshot(&self) -> Engine {
        let metrics = Registry::new();
        let counters = EngineCounters::new(&metrics);
        Engine {
            store: Arc::clone(&self.store),
            features: self.features.clone(),
            procs: self.procs.clone(),
            ext: self.ext.clone(),
            incr: self.incr.clone(),
            colshare: Arc::clone(&self.colshare),
            epoch: self.epoch,
            limits: self.limits,
            stats: ExecStats::default(),
            budget: self.budget.clone(),
            fault: Arc::clone(&self.fault),
            clock: Arc::clone(&self.clock),
            memo: Arc::clone(&self.memo),
            proc_sigs_cache: std::sync::OnceLock::new(),
            metrics,
            tracer: self.tracer.clone(),
            trace_parent: self.trace_parent,
            counters,
            // Live telemetry and the flight ring are shared: a snapshot's
            // runs belong to the same tenant's timeline.
            live: self.live.clone(),
            flight: self.flight.clone(),
            pool: None,
        }
    }

    /// Folds the reuse-cache entries a snapshot computed back into this
    /// engine (existing entries win — both engines computed the same
    /// pure results). No-op if the snapshot diverged (different epoch).
    pub fn absorb_cache(&mut self, snapshot: Engine) {
        if snapshot.epoch != self.epoch {
            return;
        }
        self.incr.absorb(snapshot.incr);
    }

    /// Freezes this engine into a shareable [`EngineCore`]: the store,
    /// tables, registries, feature memo, and any warm incremental-cache
    /// entries it accumulated become the seed that every
    /// [`EngineCore::fork`] starts from. The typical service pattern is
    /// *configure → warm up → `into_core` → fork per session*.
    pub fn into_core(self) -> EngineCore {
        EngineCore {
            store: self.store,
            features: self.features,
            procs: self.procs,
            ext: self.ext,
            memo: self.memo,
            incr: std::sync::Mutex::new(self.incr),
            colshare: self.colshare,
            epoch: self.epoch,
            limits: self.limits,
        }
    }

    /// Store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Features.
    pub fn features(&self) -> &FeatureRegistry {
        &self.features
    }

    /// Features mut. Mutable access may change feature behavior, so it
    /// invalidates everything derived from feature results: the rule
    /// reuse cache (by epoch bump) and the `Verify`/`Refine` memo.
    pub fn features_mut(&mut self) -> &mut FeatureRegistry {
        self.epoch += 1;
        self.incr.clear();
        self.memo.clear();
        self.proc_sigs_cache = std::sync::OnceLock::new();
        &mut self.features
    }

    /// The shared `Verify`/`Refine` memo.
    pub fn memo(&self) -> &Arc<crate::memo::FeatureMemo> {
        &self.memo
    }

    /// How many row tables currently hold a shared columnar conversion
    /// (DESIGN.md §14). Under the second-sight policy this goes non-zero
    /// once a constraint pass revisits a stable table (e.g. the second
    /// run over an extensional scan) — the `prop_batch` suite pins this
    /// so the ablation tests cannot pass vacuously.
    pub fn columnar_conversions(&self) -> usize {
        self.colshare.len()
    }

    /// Procs.
    pub fn procs(&self) -> &ProcRegistry {
        &self.procs
    }

    /// Procs mut.
    pub fn procs_mut(&mut self) -> &mut ProcRegistry {
        self.epoch += 1;
        self.incr.clear();
        self.proc_sigs_cache = std::sync::OnceLock::new();
        &mut self.procs
    }

    /// Registers an extensional table (invalidates the reuse cache).
    pub fn add_table(&mut self, name: &str, table: CompactTable) {
        self.epoch += 1;
        self.incr.clear();
        self.ext.insert(name.to_string(), Arc::new(table));
    }

    /// Registers a one-column extensional table of whole documents —
    /// the typical `housePages(x)` input.
    pub fn add_doc_table(&mut self, name: &str, ids: &[DocId]) {
        let rows: Vec<Vec<Value>> = ids
            .iter()
            .map(|&id| vec![Value::Span(self.store.doc(id).full_span())])
            .collect();
        self.add_table(
            name,
            CompactTable::from_exact_rows(vec!["doc".to_string()], rows),
        );
    }

    /// The registered extensional table names and arities.
    pub fn ext_tables(&self) -> impl Iterator<Item = (&str, &CompactTable)> {
        self.ext.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }

    /// Drops all memoized rule results (and the columnar conversions
    /// their tables anchored).
    pub fn clear_cache(&mut self) {
        self.incr.clear();
        self.colshare.clear();
    }

    /// Signatures of the registered procedures for the rule compiler.
    /// Computed once and cached until [`Engine::procs_mut`] /
    /// [`Engine::features_mut`] invalidate it — `run` is called once per
    /// iteration and per simulation probe, and the signatures never
    /// change in between.
    fn proc_sigs(&self) -> Arc<BTreeMap<String, (bool, usize)>> {
        Arc::clone(self.proc_sigs_cache.get_or_init(|| {
            Arc::new(
                self.procs
                    .names()
                    .into_iter()
                    .filter_map(|n| {
                        let sig = match self.procs.get(n)? {
                            Procedure::Filter(_) => (true, 0),
                            Procedure::Generator { out_arity, .. } => (false, *out_arity),
                        };
                        Some((n.to_string(), sig))
                    })
                    .collect(),
            )
        }))
    }

    /// The validation environment matching this engine's state.
    pub fn validate_env(&self) -> ValidateEnv {
        let mut env = ValidateEnv::new();
        env.extensional.extend(self.ext.keys().cloned());
        env.procedures
            .extend(self.procs.names().into_iter().map(str::to_string));
        env
    }

    /// Renders the compiled execution plan of `prog` (one fragment per
    /// unfolded rule, evaluation order first) — EXPLAIN for Alog.
    pub fn explain(&self, prog: &Program) -> Result<String, EngineError> {
        let env = self.validate_env();
        let errors = validate(prog, &env);
        if !errors.is_empty() {
            return Err(EngineError::Validation(errors));
        }
        let unfolded = unfold(prog);
        let order = evaluation_order(&unfolded).map_err(|e| EngineError::Validation(vec![e]))?;
        let ext_arity: BTreeMap<String, usize> = self
            .ext
            .iter()
            .map(|(k, v)| (k.clone(), v.arity()))
            .collect();
        let mut int_arity: BTreeMap<String, usize> = BTreeMap::new();
        for r in &unfolded.rules {
            int_arity.insert(r.head.name.clone(), r.head.args.len());
        }
        let proc_sigs = self.proc_sigs();
        let cenv = CompileEnv {
            extensional: &ext_arity,
            intensional: &int_arity,
            procedures: proc_sigs.as_ref(),
        };
        // Relation sizes for the optimizer's cardinality model:
        // extensional tables report their actual row counts; intensional
        // relations are unknown before a run and modeled as empty (the
        // rewrites still show, only size-driven choices stay neutral).
        let mut rels: BTreeMap<String, (usize, usize)> = self
            .ext
            .iter()
            .map(|(k, v)| (k.clone(), (v.arity(), v.len())))
            .collect();
        for (k, a) in &int_arity {
            rels.entry(k.clone()).or_insert((*a, 0));
        }
        let stats = self.memo.feature_stats();
        let octx = crate::lplan::OptCtx {
            relations: &rels,
            stats: &stats,
        };
        let mut out = String::new();
        use std::fmt::Write as _;
        for name in &order {
            for rule in unfolded.rules_for(name) {
                let plan = compile_rule(rule, &cenv)?;
                let _ = writeln!(out, "-- {rule}");
                match self
                    .limits
                    .use_optimizer
                    .then(|| crate::lplan::optimize(&plan, &octx))
                    .flatten()
                {
                    Some((optimized, report)) => {
                        out.push_str(&optimized.explain());
                        let _ = writeln!(out, "-- opt: {}", report.summary());
                    }
                    None => out.push_str(&plan.explain()),
                }
            }
        }
        Ok(out)
    }

    /// Executes `prog` over the full input, returning the query's compact
    /// table. The result is reference-counted: reuse-cache entries, the
    /// caller, and session retries all share one allocation.
    pub fn run(&mut self, prog: &Program) -> Result<Arc<CompactTable>, EngineError> {
        self.run_inner(prog, None)
    }

    /// Executes `prog` over a sampled subset of the extensional tables
    /// (§5.2 subset evaluation).
    pub fn run_sampled(
        &mut self,
        prog: &Program,
        sample: Sample,
    ) -> Result<Arc<CompactTable>, EngineError> {
        self.run_inner(prog, Some(sample))
    }

    /// Per-run setup and teardown around [`Engine::run_body`]: resets the
    /// metrics registry and stats, opens the `run` span, and — on **every**
    /// exit path, including validation/compile errors and strict-mode
    /// failures — fills [`Engine::stats`] from the registry and closes the
    /// span, so observers never see one run's numbers under another run's
    /// label.
    fn run_inner(
        &mut self,
        prog: &Program,
        sample: Option<Sample>,
    ) -> Result<Arc<CompactTable>, EngineError> {
        self.metrics.reset();
        self.stats = ExecStats::default();
        let live_t0 = std::time::Instant::now();
        if !self.limits.use_optimizer && self.limits.use_incremental {
            warn_optimizer_off_incremental_on();
        }
        // Clear stale fault-site attribution from a previous run so a
        // degradation this run is never blamed on last run's injection.
        self.fault.take_last_fired();
        let (memo_hits0, memo_misses0) = self.memo.counters();
        self.clock = Arc::new(self.budget.start());
        // Arm the run's worker pool. Creation is free — threads spawn
        // lazily on the first parallel-worthy section and are reused by
        // every later section of this run.
        self.pool = Some(crate::par::RunPool::new(self.limits.threads));
        let run_span = self.tracer.begin(
            self.trace_parent,
            SpanKind::Run,
            if sample.is_some() { "run:sampled" } else { "run:full" },
        );

        let result = self.run_body(prog, sample, run_span);
        // Join (and drop) the pool on every exit path.
        self.pool = None;

        let c = &self.counters;
        self.stats.rules_evaluated = c.rules_evaluated.get() as usize;
        self.stats.cache_hits = c.cache_hits.get() as usize;
        self.stats.tuples_scanned = c.tuples_scanned.get() as usize;
        self.stats.assignments_produced = c.assignments_produced.get() as usize;
        self.stats.par_sections = c.par_sections.get() as usize;
        self.stats.par_morsels = c.par_morsels.get();
        self.stats.par_steals = c.par_steals.get();
        self.stats.par_dispense_us = c.par_dispense_us.get();
        self.stats.incr_hits = c.incr_hits.get() as usize;
        self.stats.incr_misses = c.incr_misses.get() as usize;
        self.stats.incr_invalidations = c.incr_invalidations.get() as usize;
        self.stats.shard_busy_us = self.metrics.indexed_counters(names::SHARD_BUSY_PREFIX);
        self.stats.feature_cache_hits = self.memo.hits().saturating_sub(memo_hits0);
        self.stats.feature_cache_misses = self.memo.misses().saturating_sub(memo_misses0);
        // Mirror the memo deltas into the registry so a metrics snapshot
        // is self-contained.
        c.feature_cache_hits.set(self.stats.feature_cache_hits as u64);
        c.feature_cache_misses
            .set(self.stats.feature_cache_misses as u64);

        self.tracer.end_with(
            run_span,
            &[
                ("tuples_out", result.as_ref().map(|t| t.len()).unwrap_or(0) as u64),
                ("degradations", self.stats.degradations.len() as u64),
            ],
        );
        // Live telemetry outlives the per-run registry reset above: run
        // latency feeds both a sliding window and a quantile sketch, and
        // degradations feed a rate window, all under the tenant this
        // engine is scoped to. One relaxed load when disabled.
        if self.live.is_enabled() {
            let run_us = live_t0.elapsed().as_micros() as u64;
            self.live.window(names::RUN_US).observe(run_us);
            self.live.sketch(names::RUN_US).observe(run_us);
            self.live
                .window(names::DEGRADATIONS)
                .add_count(self.stats.degradations.len() as u64);
        }
        if self.flight.is_enabled() {
            self.flight.record(
                "run",
                if sample.is_some() { "run:sampled" } else { "run:full" },
                format!(
                    "tuples={} degradations={}",
                    result.as_ref().map(|t| t.len()).unwrap_or(0),
                    self.stats.degradations.len()
                ),
            );
        }
        result
    }

    /// The run proper: validate → unfold → order → per-rule
    /// compile/reuse/evaluate → merge. Factored out of [`Engine::run_inner`]
    /// so `?`-style early returns cannot skip the stats/span teardown.
    fn run_body(
        &mut self,
        prog: &Program,
        sample: Option<Sample>,
        run_span: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        let env = self.validate_env();
        let errors = validate(prog, &env);
        if !errors.is_empty() {
            return Err(EngineError::Validation(errors));
        }
        let unfolded = unfold(prog);
        let order = evaluation_order(&unfolded).map_err(|e| EngineError::Validation(vec![e]))?;

        // Predicate arities for the compiler.
        let ext_arity: BTreeMap<String, usize> = self
            .ext
            .iter()
            .map(|(k, v)| (k.clone(), v.arity()))
            .collect();
        let mut int_arity: BTreeMap<String, usize> = BTreeMap::new();
        for r in &unfolded.rules {
            int_arity.insert(r.head.name.clone(), r.head.args.len());
        }
        let proc_sigs = self.proc_sigs();

        let sample_key = sample.map(|s| s.key()).unwrap_or_else(|| "full".into());
        let cenv = CompileEnv {
            extensional: &ext_arity,
            intensional: &int_arity,
            procedures: proc_sigs.as_ref(),
        };
        let use_incr = self.limits.use_incremental;
        use std::hash::{Hash, Hasher};

        // Incremental pre-pass (DESIGN.md §9): fingerprint every rule and
        // record which intensional relations each relation reads, then let
        // the cache diff the fingerprints against the previous run and
        // evict entries stranded in the changed dependency cone.
        let mut fps: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut deps: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
        for name in &order {
            let mut rule_fps: Vec<u64> = unfolded
                .rules_for(name)
                .map(|r| crate::plan::rule_fingerprint(r, &cenv))
                .collect();
            rule_fps.sort_unstable();
            fps.insert(name.clone(), rule_fps);
            let reads: std::collections::BTreeSet<String> = unfolded
                .rules_for(name)
                .flat_map(|r| r.body.iter())
                .filter_map(|atom| match atom {
                    iflex_alog::BodyAtom::Pred { name: dep, .. }
                        if int_arity.contains_key(dep) =>
                    {
                        Some(dep.clone())
                    }
                    _ => None,
                })
                .collect();
            deps.insert(name.clone(), reads);
        }
        if use_incr {
            let evicted = self.incr.begin_run(&fps, &deps);
            self.counters.incr_invalidations.add(evicted as u64);
        }

        let mut computed: BTreeMap<String, Arc<CompactTable>> = BTreeMap::new();
        // Derivational versions: a relation's version hashes its rules'
        // fingerprints and the versions of every intensional relation those
        // rules read, so a refinement upstream changes the *input version*
        // of every dependent rule — the cache misses on exactly the
        // dependency cone (the paper's reuse re-executes "the parts of the
        // plan that may possibly have changed", §5.2).
        let mut versions: BTreeMap<String, u64> = BTreeMap::new();

        for name in &order {
            let rules: Vec<&Rule> = unfolded.rules_for(name).collect();
            let Some(first_rule) = rules.first() else {
                // evaluation_order only yields defined relations; guard
                // anyway rather than index.
                continue;
            };
            let cols: Vec<String> = first_rule
                .head
                .args
                .iter()
                .map(|a| a.var.clone())
                .collect();
            let mut version_hasher = std::collections::hash_map::DefaultHasher::new();
            if let Some(rule_fps) = fps.get(name) {
                rule_fps.hash(&mut version_hasher);
            }
            if let Some(reads) = deps.get(name) {
                for dep in reads {
                    if let Some(v) = versions.get(dep) {
                        dep.hash(&mut version_hasher);
                        v.hash(&mut version_hasher);
                    }
                }
            }
            versions.insert(name.clone(), version_hasher.finish());
            // Per-rule result fragments in rule order; merged below. The
            // enum keeps degraded stand-ins interleaved exactly where the
            // rule's real result would have been.
            enum Part {
                Table(Arc<CompactTable>),
                Widened(CompactTuple),
            }
            let mut parts: Vec<Part> = Vec::new();
            for rule in rules {
                let fp = crate::plan::rule_fingerprint(rule, &cenv);
                // The rule's input versions: what its intensional reads
                // currently are. Extensional inputs are covered by the
                // epoch (any `add_table` clears the cache outright).
                let mut input_hasher = std::collections::hash_map::DefaultHasher::new();
                for atom in &rule.body {
                    if let iflex_alog::BodyAtom::Pred { name: dep, .. } = atom {
                        if let Some(v) = versions.get(dep.as_str()) {
                            dep.hash(&mut input_hasher);
                            v.hash(&mut input_hasher);
                        }
                    }
                }
                let inputs = input_hasher.finish();
                // The cache lookup runs behind the same containment
                // boundary as evaluation: a fault at `engine.memo_lookup`
                // (or a panic during the lookup itself) degrades just this
                // rule rather than failing the run.
                let mut lookup_err: Option<EngineError> = None;
                if use_incr && self.limits.reuse_enabled {
                    match self.memo_lookup_guarded(name, &sample_key, fp, inputs) {
                        Ok(Some((hit, volume))) => {
                            self.counters.cache_hits.inc();
                            self.counters.incr_hits.inc();
                            self.counters.assignments_produced.add(volume as u64);
                            if let Some((t, parent)) = self.tracer.ctx(run_span) {
                                t.instant(parent, SpanKind::Rule, &rule.to_string(), Some("cache_hit"));
                            }
                            parts.push(Part::Table(hit));
                            continue;
                        }
                        Ok(None) => self.counters.incr_misses.inc(),
                        Err(e) => lookup_err = Some(e),
                    }
                }
                let plan = compile_rule(rule, &cenv)?;
                // Logical-plan optimization (DESIGN.md §11). Runs *after*
                // fingerprinting — `rule_fingerprint` hashes the rendered
                // rule, so cache identities are optimizer-invariant — and
                // rewrites only byte-exactly, so a cached unoptimized
                // result and a fresh optimized one are interchangeable.
                let (plan, opt_report) = self.maybe_optimize(plan, &computed);
                let rule_span = match self.tracer.ctx(run_span) {
                    Some((t, parent)) => t.begin(parent, SpanKind::Rule, &rule.to_string()),
                    None => SpanId::NONE,
                };
                let before = self.counters.assignments_produced.get();
                let evaled = match lookup_err {
                    Some(e) => Err(e),
                    None => self.eval_rule_guarded(&plan, &computed, sample, rule_span),
                };
                match evaled {
                    Ok(result) => {
                        let volume = self
                            .counters
                            .assignments_produced
                            .get()
                            .saturating_sub(before) as usize;
                        self.counters.rules_evaluated.inc();
                        // Close the estimate/actual loop: the modeled
                        // whole-rule selectivity vs. what the rule really
                        // let through, for `exp_trace`'s optimizer report.
                        if let Some(rep) = &opt_report {
                            if rep.est_in_rows > 0.0 {
                                let act = (result.len() as f64 / rep.est_in_rows)
                                    .clamp(0.0, 1.0);
                                self.counters
                                    .opt_act_sel_bp
                                    .observe((act * 10_000.0) as u64);
                                if let Some((t, parent)) = self.tracer.ctx(rule_span) {
                                    t.instant(
                                        parent,
                                        SpanKind::Mark,
                                        "opt",
                                        Some(&format!(
                                            "{} act_sel={act:.4}",
                                            rep.summary()
                                        )),
                                    );
                                }
                            }
                        }
                        self.tracer
                            .end_with(rule_span, &[("tuples_out", result.len() as u64)]);
                        parts.push(Part::Table(Arc::clone(&result)));
                        if use_incr {
                            self.incr.insert(name, &sample_key, fp, inputs, result, volume);
                        }
                    }
                    Err(e) => {
                        let cause = match degrade_cause(&e) {
                            Some(c) if self.limits.degrade => c,
                            _ => {
                                self.tracer.end(rule_span);
                                return Err(e);
                            }
                        };
                        // Graceful degradation: substitute a widened,
                        // superset-safe stand-in for this rule's result and
                        // record what happened. Degraded results are never
                        // cached — the next run retries the rule exactly.
                        self.counters.rules_evaluated.inc();
                        self.counters.degradations.inc();
                        self.metrics
                            .counter(&format!("{}{}", names::DEGRADATIONS_PREFIX, cause.slug()))
                            .inc();
                        // S3: if an armed fault fired since the last
                        // degradation, attribute this record to its site.
                        let site = self.fault.take_last_fired();
                        if let Some((t, parent)) = self.tracer.ctx(rule_span) {
                            let note = match site {
                                Some(s) => format!("{} @ {s}", cause.slug()),
                                None => cause.slug().to_string(),
                            };
                            t.instant(parent, SpanKind::Mark, "degradation", Some(&note));
                        }
                        self.tracer.end(rule_span);
                        if self.flight.is_enabled() {
                            self.flight.record(
                                "degradation",
                                rule.to_string(),
                                match site {
                                    Some(s) => format!("{} @ {s}", cause.slug()),
                                    None => cause.slug().to_string(),
                                },
                            );
                        }
                        self.stats.degradations.push(Degradation {
                            rule: rule.to_string(),
                            cause,
                            site: site.map(str::to_string),
                            truncated: e.to_string(),
                        });
                        parts.push(Part::Widened(self.widened_tuple(cols.len())));
                    }
                }
            }
            // Single exact rule whose result already has the head columns:
            // share its allocation instead of copying tuple by tuple (the
            // overwhelmingly common shape after unfolding).
            let table: Arc<CompactTable> = match parts.as_slice() {
                [Part::Table(t)] if t.columns() == cols.as_slice() => match parts.pop() {
                    Some(Part::Table(t)) => t,
                    _ => unreachable!("just matched a single-table part"),
                },
                _ => {
                    let mut merged = CompactTable::new(cols);
                    for part in parts {
                        match part {
                            Part::Table(t) => {
                                for tup in t.tuples() {
                                    merged.push(tup.clone());
                                }
                            }
                            Part::Widened(tup) => merged.push(tup),
                        }
                    }
                    Arc::new(merged)
                }
            };
            self.counters
                .assignments_produced
                .add(table.stats().assignments as u64);
            computed.insert(name.clone(), table);
        }

        computed
            .remove(&prog.query)
            .ok_or_else(|| EngineError::MissingTable(prog.query.clone()))
    }

    /// Runs one compiled plan through the logical-plan optimizer when
    /// [`Limits::use_optimizer`] is on, feeding it actual relation sizes
    /// (extensional tables plus every intensional relation computed so
    /// far) and the feature memo's measured per-feature pass rates. A
    /// plan the optimizer cannot model runs unchanged.
    fn maybe_optimize(
        &self,
        plan: Plan,
        computed: &BTreeMap<String, Arc<CompactTable>>,
    ) -> (Plan, Option<crate::lplan::OptReport>) {
        if !self.limits.use_optimizer {
            return (plan, None);
        }
        let mut rels: BTreeMap<String, (usize, usize)> = self
            .ext
            .iter()
            .map(|(k, v)| (k.clone(), (v.arity(), v.len())))
            .collect();
        for (k, v) in computed {
            rels.insert(k.clone(), (v.arity(), v.len()));
        }
        let stats = self.memo.feature_stats();
        let octx = crate::lplan::OptCtx {
            relations: &rels,
            stats: &stats,
        };
        match crate::lplan::optimize(&plan, &octx) {
            Some((optimized, report)) => {
                let c = &self.counters;
                c.opt_plans.inc();
                c.opt_pushdowns.add(u64::from(report.pushdowns));
                c.opt_reorders.add(u64::from(report.reorders));
                c.opt_join_flips.add(u64::from(report.join_flips));
                c.opt_fused_nodes.add(u64::from(report.fused_nodes));
                c.opt_fused_steps.add(u64::from(report.fused_steps));
                c.opt_est_sel_bp
                    .observe((report.est_selectivity() * 10_000.0) as u64);
                (optimized, Some(report))
            }
            None => (plan, None),
        }
    }

    /// Looks up a rule's cached result behind the fault-containment
    /// boundary: the [`fault::site::MEMO_LOOKUP`] injection site fires
    /// here, and a panic raised during the lookup is caught and converted
    /// into [`EngineError::RulePanic`] — a corrupted or faulted shared
    /// cache degrades one rule, never the run or the process.
    fn memo_lookup_guarded(
        &mut self,
        rel: &str,
        sample_key: &str,
        fp: u64,
        inputs: u64,
    ) -> Result<Option<(Arc<CompactTable>, usize)>, EngineError> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(f) = self.fault.hit(fault::site::MEMO_LOOKUP) {
                return Err(injected(f));
            }
            Ok(self.incr.get(rel, sample_key, fp, inputs))
        }));
        match caught {
            Ok(res) => res,
            Err(payload) => Err(EngineError::RulePanic(panic_message(payload.as_ref()))),
        }
    }

    /// Evaluates one rule's plan behind the fault-containment boundary:
    /// injected faults fire first, the run clock is consulted, and any
    /// panic raised during evaluation is caught and converted into
    /// [`EngineError::RulePanic`] — the process never aborts on a bad rule.
    fn eval_rule_guarded(
        &mut self,
        plan: &Plan,
        computed: &BTreeMap<String, Arc<CompactTable>>,
        sample: Option<Sample>,
        rule_span: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(f) = self.fault.hit(fault::site::EVAL_RULE) {
                return Err(injected(f));
            }
            self.clock.check().map_err(EngineError::from)?;
            self.eval_plan(plan, computed, sample, rule_span)
        }));
        match caught {
            Ok(res) => res,
            Err(payload) => Err(EngineError::RulePanic(panic_message(payload.as_ref()))),
        }
    }

    /// The superset-safe stand-in for a degraded rule: one `maybe` tuple
    /// whose every cell covers any token-aligned sub-span of any input
    /// document. Every extraction-derived value the exact evaluation could
    /// have produced is therefore still encoded (widening is lossy only
    /// for values never drawn from the corpus, e.g. pure numeric
    /// constants).
    fn widened_tuple(&self, arity: usize) -> CompactTuple {
        let assigns: Vec<Assignment> = self
            .store
            .iter()
            .map(|doc| Assignment::Contain(doc.full_span()))
            .collect();
        CompactTuple {
            cells: vec![Cell::of(assigns); arity],
            maybe: true,
        }
    }

    /// Evaluates one plan fragment bottom-up. Results are
    /// reference-counted so scans of cached/extensional tables are free
    /// and per-tuple operators can fan out over shared inputs.
    ///
    /// This wrapper owns the per-operator observability: it opens an
    /// `operator` span under `parent` (a static name — nothing is
    /// formatted when tracing is off), times the node inclusively into
    /// the `engine.op.<name>.us` histogram, and counts output tuples.
    /// Both costs are per plan *node*, not per tuple, so the disabled-
    /// path overhead is a handful of relaxed atomics per operator.
    fn eval_plan(
        &mut self,
        plan: &Plan,
        computed: &BTreeMap<String, Arc<CompactTable>>,
        sample: Option<Sample>,
        parent: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        self.clock.tick().map_err(EngineError::from)?;
        let op = op_idx(plan);
        let t0 = std::time::Instant::now();
        let span = self
            .tracer
            .begin(parent, SpanKind::Operator, OP_NAMES[op]);
        let result = self.eval_plan_inner(plan, computed, sample, span);
        self.counters.op_us[op].observe(t0.elapsed().as_micros() as u64);
        match &result {
            Ok(t) => {
                self.counters.op_tuples[op].add(t.len() as u64);
                self.tracer.end_with(span, &[("tuples_out", t.len() as u64)]);
            }
            Err(_) => self.tracer.end(span),
        }
        result
    }

    fn eval_plan_inner(
        &mut self,
        plan: &Plan,
        computed: &BTreeMap<String, Arc<CompactTable>>,
        sample: Option<Sample>,
        span: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        match plan {
            Plan::ScanExt { name } => {
                let t = self
                    .ext
                    .get(name)
                    .ok_or_else(|| EngineError::MissingTable(name.clone()))?;
                self.counters.tuples_scanned.add(t.len() as u64);
                Ok(match sample {
                    Some(s) => Arc::new(s.apply(t)),
                    None => Arc::clone(t),
                })
            }
            Plan::ScanRel { name } => computed
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::MissingTable(name.clone())),
            Plan::FromExtract { input, in_col } => {
                let t = self.eval_plan(input, computed, sample, span)?;
                let mut cols = t.columns().to_vec();
                cols.push(format!("_f{}", cols.len()));
                let mut out = CompactTable::new(cols);
                for tup in t.tuples() {
                    let mut assigns = Vec::new();
                    for a in tup.cells[*in_col].assignments() {
                        if let Some(s) = a.span() {
                            assigns.push(Assignment::Contain(s));
                        }
                    }
                    if assigns.is_empty() {
                        continue; // nothing to extract from
                    }
                    let mut cells = tup.cells.clone();
                    cells.push(Cell::expansion(assigns));
                    out.push(CompactTuple {
                        cells,
                        maybe: tup.maybe,
                    });
                }
                Ok(Arc::new(out))
            }
            Plan::Constraint {
                input,
                col,
                constraint,
                priors,
            } => {
                // Domain-constraint selection fans out across worker
                // threads: tuples are independent, and the feature memo
                // dedups repeated `Verify`/`Refine` calls across morsels.
                let t = self.eval_plan(input, computed, sample, span)?;
                let col = *col;
                // Columnar path (DESIGN.md §14): one shared conversion per
                // table allocation (converted on second sight — scratch
                // tables fall through to the row core below), morsels slice
                // the column's id run, and every distinct cell in a morsel
                // goes through the batch constraint entry point exactly
                // once.
                if let Some(ct) = self
                    .limits
                    .use_columnar
                    .then(|| self.colshare.get_adaptive(&t))
                    .flatten()
                {
                    let mr = {
                        let ec = self.eval_ctx();
                        let ops = vec![FusedOp::Constraint {
                            col,
                            constraint: constraint.clone(),
                            priors: priors.clone(),
                        }];
                        let ctxs = vec![ec
                            .memo_opt()
                            .map(|_| crate::constraint::chain_ctx(constraint, priors))];
                        let ct = Arc::clone(&ct);
                        crate::par::scatter(&self.section_ctx(span), ct.len(), move |range| {
                            // No tuple ctx: the standalone row path uses
                            // the cell-level memo only, and so does this.
                            let out = ec.fused_columnar_run(
                                &ct,
                                range,
                                &ops,
                                &ctxs,
                                &BTreeMap::new(),
                                None,
                                None,
                            )?;
                            Ok(out.into_iter().map(|(tup, _)| tup).collect::<Vec<_>>())
                        })
                    };
                    self.note_section(&mr.stats);
                    let mut out = CompactTable::new(t.columns().to_vec());
                    for tup in mr.merge()? {
                        out.push(tup);
                    }
                    return Ok(Arc::new(out));
                }
                let mr = {
                    let ec = self.eval_ctx();
                    let constraint = constraint.clone();
                    let priors = priors.clone();
                    let ctx = ec
                        .memo_opt()
                        .map(|_| crate::constraint::chain_ctx(&constraint, &priors));
                    let t = Arc::clone(&t);
                    crate::par::scatter(&self.section_ctx(span), t.len(), move |range| {
                        let mut out = Vec::new();
                        for tup in &t.tuples()[range] {
                            ec.clock.tick().map_err(EngineError::from)?;
                            let new_cell = match (ec.memo_opt(), ctx.as_ref()) {
                                (Some(m), Some(c)) => crate::constraint::apply_constraint_cached(
                                    &tup.cells[col],
                                    &constraint,
                                    &priors,
                                    &ec.store,
                                    &ec.features,
                                    m,
                                    c,
                                )?,
                                _ => crate::constraint::apply_constraint_memo(
                                    &tup.cells[col],
                                    &constraint,
                                    &priors,
                                    &ec.store,
                                    &ec.features,
                                    None,
                                )?,
                            };
                            if new_cell.is_empty() {
                                continue;
                            }
                            let mut cells = tup.cells.clone();
                            cells[col] = new_cell;
                            out.push(CompactTuple {
                                cells,
                                maybe: tup.maybe,
                            });
                        }
                        Ok(out)
                    })
                };
                self.note_section(&mr.stats);
                let mut out = CompactTable::new(t.columns().to_vec());
                for tup in mr.merge()? {
                    out.push(tup);
                }
                Ok(Arc::new(out))
            }
            Plan::Compare {
                input,
                left,
                op,
                right,
                offset,
            } => {
                // Fused path: a selection directly above a cross join is
                // evaluated pairwise so the full product never materializes.
                if let Plan::CrossJoin { left: jl, right: jr } = input.as_ref() {
                    let op = *op;
                    let offset = *offset;
                    let left = left.clone();
                    let right = right.clone();
                    return self.fused_join(jl, jr, computed, sample, span, move |ec, cells| {
                        let lc = ec.cell_operand_cands(&left, cells);
                        let rc = shift_cands(
                            ec.cell_operand_cands(&right, cells),
                            offset,
                            &ec.store,
                        );
                        compare_cands(&lc, op, &rc, &ec.store)
                    });
                }
                let t = self.eval_plan(input, computed, sample, span)?;
                let (op, offset) = (*op, *offset);
                let mr = {
                    let ec = self.eval_ctx();
                    let (left, right) = (left.clone(), right.clone());
                    let t = Arc::clone(&t);
                    crate::par::scatter(&self.section_ctx(span), t.len(), move |range| {
                        let mut out = Vec::new();
                        for tup in &t.tuples()[range] {
                            ec.clock.tick().map_err(EngineError::from)?;
                            let lc = ec.operand_cands(&left, tup);
                            let rc =
                                shift_cands(ec.operand_cands(&right, tup), offset, &ec.store);
                            let mm = compare_cands(&lc, op, &rc, &ec.store);
                            if !mm.may {
                                continue;
                            }
                            let mut new = tup.clone();
                            new.maybe |= !mm.must;
                            out.push(new);
                        }
                        Ok(out)
                    })
                };
                self.note_section(&mr.stats);
                let mut out = CompactTable::new(t.columns().to_vec());
                for tup in mr.merge()? {
                    out.push(tup);
                }
                Ok(Arc::new(out))
            }
            Plan::VarUnify { input, col_a, col_b } => {
                if let Plan::CrossJoin { left: jl, right: jr } = input.as_ref() {
                    let (a, b) = (*col_a, *col_b);
                    return self.fused_join(jl, jr, computed, sample, span, move |ec, cells| {
                        cells_may_equal(cells[a], cells[b], &ec.store, ec.limits.cmp_enum_cap)
                    });
                }
                let t = self.eval_plan(input, computed, sample, span)?;
                let (a, b) = (*col_a, *col_b);
                let mr = {
                    let ec = self.eval_ctx();
                    let t = Arc::clone(&t);
                    crate::par::scatter(&self.section_ctx(span), t.len(), move |range| {
                        let mut out = Vec::new();
                        for tup in &t.tuples()[range] {
                            ec.clock.tick().map_err(EngineError::from)?;
                            let mm = cells_may_equal(
                                &tup.cells[a],
                                &tup.cells[b],
                                &ec.store,
                                ec.limits.cmp_enum_cap,
                            );
                            if !mm.may {
                                continue;
                            }
                            let mut new = tup.clone();
                            new.maybe |= !mm.must;
                            out.push(new);
                        }
                        Ok(out)
                    })
                };
                self.note_section(&mr.stats);
                let mut out = CompactTable::new(t.columns().to_vec());
                for tup in mr.merge()? {
                    out.push(tup);
                }
                Ok(Arc::new(out))
            }
            Plan::FilterProc { input, name, cols } => {
                let Some(Procedure::Filter(f)) = self.procs.get(name) else {
                    return Err(EngineError::BadProcedure(name.clone()));
                };
                let f = f.clone();
                // Approximate string join: similar(a, b) over a cross join
                // with one column per side runs through a token prefilter
                // with per-side precomputed profiles (§4.1's "significantly
                // more involved" join; see DESIGN.md).
                if let (Plan::CrossJoin { left: jl, right: jr }, true, [ca, cb]) = (
                    input.as_ref(),
                    name == "similar" || name == "approxMatch",
                    cols.as_slice(),
                ) {
                    let l = self.eval_plan(jl, computed, sample, span)?;
                    let r = self.eval_plan(jr, computed, sample, span)?;
                    if *ca < l.arity() && *cb >= l.arity() {
                        let rcol = *cb - l.arity();
                        return self.similar_join(l, r, *ca, rcol, span);
                    }
                }
                if let Plan::CrossJoin { left: jl, right: jr } = input.as_ref() {
                    let cols = cols.clone();
                    let combo_cap = self.limits.combo_cap;
                    let enum_cap = self.limits.enum_cap;
                    let ff = f.clone();
                    return self.fused_join(jl, jr, computed, sample, span, move |ec, cells| {
                        let cands: Vec<Cands> = cols
                            .iter()
                            .map(|&c| {
                                candidates_budgeted(
                                    cells[c],
                                    &ec.store,
                                    enum_cap,
                                    ec.clock.tripped(),
                                )
                            })
                            .collect();
                        let store: &DocumentStore = &ec.store;
                        filter_cands(&cands, &|args: &[Value]| ff(store, args), combo_cap)
                    });
                }
                let t = self.eval_plan(input, computed, sample, span)?;
                let mr = {
                    let ec = self.eval_ctx();
                    let cols = cols.clone();
                    let t = Arc::clone(&t);
                    crate::par::scatter(&self.section_ctx(span), t.len(), move |range| {
                        let mut out = Vec::new();
                        for tup in &t.tuples()[range] {
                            ec.clock.tick().map_err(EngineError::from)?;
                            let cands: Vec<Cands> = cols
                                .iter()
                                .map(|&c| {
                                    candidates_budgeted(
                                        &tup.cells[c],
                                        &ec.store,
                                        ec.limits.enum_cap,
                                        ec.clock.tripped(),
                                    )
                                })
                                .collect();
                            let store: &DocumentStore = &ec.store;
                            let mm = filter_cands(
                                &cands,
                                &|args: &[Value]| f(store, args),
                                ec.limits.combo_cap,
                            );
                            if !mm.may {
                                continue;
                            }
                            let mut new = tup.clone();
                            new.maybe |= !mm.must;
                            out.push(new);
                        }
                        Ok(out)
                    })
                };
                self.note_section(&mr.stats);
                let mut out = CompactTable::new(t.columns().to_vec());
                for tup in mr.merge()? {
                    out.push(tup);
                }
                Ok(Arc::new(out))
            }
            Plan::GenerateProc {
                input,
                name,
                in_cols,
                out_arity,
            } => {
                let t = self.eval_plan(input, computed, sample, span)?;
                let Some(Procedure::Generator { out_arity: oa, f }) = self.procs.get(name) else {
                    return Err(EngineError::BadProcedure(name.clone()));
                };
                debug_assert_eq!(oa, out_arity);
                let f = f.clone();
                let out_arity = *out_arity;
                let mut cols = t.columns().to_vec();
                for k in 0..out_arity {
                    cols.push(format!("_g{}", cols.len() + k));
                }
                let mr = {
                    let ec = self.eval_ctx();
                    let name = name.clone();
                    let in_cols = in_cols.clone();
                    let t = Arc::clone(&t);
                    crate::par::scatter(&self.section_ctx(span), t.len(), move |range| {
                        let store: &DocumentStore = &ec.store;
                        let mut out = Vec::new();
                        for tup in &t.tuples()[range] {
                            if let Some(f) = ec.fault.hit(fault::site::GENERATOR) {
                                return Err(injected(f));
                            }
                            let flats = tup
                                .expand_fully(store, ec.limits.expand_limit)
                                .ok_or_else(|| {
                                    EngineError::TooLarge(format!("expansion in generator {name}"))
                                })?;
                            for flat in flats {
                                // Possible input combinations over the input columns.
                                let sets: Vec<Vec<Value>> = in_cols
                                    .iter()
                                    .map(|&c| flat.cells[c].value_set(store).into_iter().collect())
                                    .collect();
                                let total: u64 = sets
                                    .iter()
                                    .fold(1u64, |acc, s| acc.saturating_mul(s.len() as u64));
                                if total > ec.limits.combo_cap {
                                    return Err(EngineError::TooLarge(format!(
                                        "input enumeration in generator {name}"
                                    )));
                                }
                                if total == 0 {
                                    continue;
                                }
                                let uncertain_input = total > 1;
                                let mut idx = vec![0usize; sets.len()];
                                loop {
                                    ec.clock.tick().map_err(EngineError::from)?;
                                    let args: Vec<Value> = idx
                                        .iter()
                                        .zip(&sets)
                                        .map(|(&i, s)| s[i].clone())
                                        .collect();
                                    for row in f(store, &args) {
                                        if row.len() != out_arity {
                                            return Err(EngineError::BadProcedure(format!(
                                                "{name}: returned arity {} != {out_arity}",
                                                row.len()
                                            )));
                                        }
                                        let mut cells = flat.cells.clone();
                                        cells.extend(row.into_iter().map(Cell::exact));
                                        out.push(CompactTuple {
                                            cells,
                                            maybe: flat.maybe || uncertain_input,
                                        });
                                    }
                                    // odometer
                                    let mut k = sets.len();
                                    let mut done = sets.is_empty();
                                    while k > 0 {
                                        k -= 1;
                                        idx[k] += 1;
                                        if idx[k] < sets[k].len() {
                                            break;
                                        }
                                        idx[k] = 0;
                                        if k == 0 {
                                            done = true;
                                        }
                                    }
                                    if done {
                                        break;
                                    }
                                }
                            }
                        }
                        Ok(out)
                    })
                };
                self.note_section(&mr.stats);
                let mut out = CompactTable::new(cols);
                for tup in mr.merge()? {
                    out.push(tup);
                }
                Ok(Arc::new(out))
            }
            Plan::CrossJoin { left, right } => {
                let l = self.eval_plan(left, computed, sample, span)?;
                let r = self.eval_plan(right, computed, sample, span)?;
                let mut cols = l.columns().to_vec();
                cols.extend(r.columns().iter().cloned());
                let cap = self.limits.max_result_tuples;
                let mr = {
                    let ec = self.eval_ctx();
                    let l = Arc::clone(&l);
                    let r = Arc::clone(&r);
                    crate::par::scatter(&self.section_ctx(span), l.len(), move |range| {
                        let mut out = Vec::new();
                        for lt in &l.tuples()[range] {
                            for rt in r.tuples() {
                                ec.clock.tick().map_err(EngineError::from)?;
                                if let Some(f) = ec.fault.hit(fault::site::JOIN_TUPLE) {
                                    return Err(injected(f));
                                }
                                // Per-morsel heuristic; the authoritative cap
                                // check happens again at merge time below.
                                if out.len() >= cap {
                                    return Err(EngineError::TooLarge("cross join result".into()));
                                }
                                let mut cells = lt.cells.clone();
                                cells.extend(rt.cells.iter().cloned());
                                out.push(CompactTuple {
                                    cells,
                                    maybe: lt.maybe || rt.maybe,
                                });
                            }
                        }
                        Ok(out)
                    })
                };
                self.note_section(&mr.stats);
                let mut out = CompactTable::new(cols);
                for tup in mr.merge()? {
                    if out.len() >= cap {
                        return Err(EngineError::TooLarge("cross join result".into()));
                    }
                    out.push(tup);
                }
                Ok(Arc::new(out))
            }
            Plan::Project { input, cols, names } => {
                let t = self.eval_plan(input, computed, sample, span)?;
                // The convergence monitor watches assignments "produced by
                // the extraction process" (§5.1) — measure extraction
                // volume before projection hides refined-but-unprojected
                // attributes.
                let volume: u64 = t
                    .tuples()
                    .iter()
                    .flat_map(|tup| tup.cells.iter())
                    .fold(0u64, |acc, c| {
                        acc.saturating_add(c.value_count(&self.store).min(1 << 20))
                    });
                self.counters.assignments_produced.add(volume);
                let mut out = CompactTable::new(names.clone());
                for tup in t.tuples() {
                    out.push(CompactTuple {
                        cells: cols.iter().map(|&c| tup.cells[c].clone()).collect(),
                        maybe: tup.maybe,
                    });
                }
                Ok(Arc::new(out))
            }
            Plan::Annotate {
                input,
                existence,
                annotated,
            } => {
                let t = self.eval_plan(input, computed, sample, span)?;
                if let Some(f) = self.fault.hit(fault::site::ANNOTATE) {
                    return Err(injected(f));
                }
                // ψ consumes its input; unshare only when another owner
                // (ext table / reuse cache) still references it.
                let t = Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone());
                // Past the deadline the ψ operator is forced onto the cheap
                // compact-direct path (still superset-preserving).
                let policy =
                    degraded_policy(self.limits.annotate_policy, self.clock.tripped());
                let (out, _path) = apply_annotations_with(
                    t,
                    *existence,
                    annotated,
                    &self.store,
                    self.limits.atable_budget,
                    policy,
                );
                Ok(Arc::new(out))
            }
            Plan::Fused {
                input,
                ops,
                project,
                outer_right,
            } => self.eval_fused(
                input,
                ops,
                project.as_ref(),
                *outer_right,
                computed,
                sample,
                span,
            ),
        }
    }

    /// Records a morsel section in the metrics registry: bumps
    /// `engine.par_sections` when the section actually fanned out, adds
    /// the morsel / steal / dispense totals, and accumulates
    /// per-participant busy time into the indexed
    /// `engine.shard_busy_us.<i>` counters. `ExecStats` reads these back
    /// at the end of the run.
    fn note_section(&self, stats: &crate::par::SectionStats) {
        if stats.went_parallel {
            self.counters.par_sections.inc();
        }
        self.counters.par_morsels.add(stats.morsels);
        self.counters.par_steals.add(stats.steals);
        self.counters.par_dispense_us.add(stats.dispense_us);
        let live = self.live.is_enabled();
        for (i, us) in stats.busy_micros.iter().enumerate() {
            self.metrics
                .counter(&format!("{}{}", names::SHARD_BUSY_PREFIX, i))
                .add(*us);
            // Windowed companion (ROADMAP item 2: imbalance over the last
            // few seconds is what a scheduler can act on, not lifetime
            // sums).
            if live {
                self.live.shard_busy(i).observe(*us);
            }
        }
        if live {
            // Windowed steal pressure: a scheduler watching the live set
            // can spot skewed operators (many steals) as they happen.
            self.live.window(names::PAR_STEALS).add_count(stats.steals);
        }
    }

    /// Streams the cross product of two sub-plans, keeping only pairs the
    /// predicate admits (may = true). The full product is never
    /// materialized — essential for the large similarity joins. With
    /// `Limits::threads > 1` the outer side is morsel-scattered across
    /// the run's worker pool (the predicate only reads the [`EvalCtx`]).
    fn fused_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        computed: &BTreeMap<String, Arc<CompactTable>>,
        sample: Option<Sample>,
        span: SpanId,
        pred: impl Fn(&EvalCtx, &[&Cell]) -> crate::eval::MayMust + Send + Sync + 'static,
    ) -> Result<Arc<CompactTable>, EngineError> {
        let l = self.eval_plan(left, computed, sample, span)?;
        let r = self.eval_plan(right, computed, sample, span)?;
        let mut cols = l.columns().to_vec();
        cols.extend(r.columns().iter().cloned());
        let cap = self.limits.max_result_tuples;

        let mr = {
            let ec = self.eval_ctx();
            let l = Arc::clone(&l);
            let r = Arc::clone(&r);
            crate::par::scatter(&self.section_ctx(span), l.len(), move |range| {
                let mut out = Vec::new();
                let mut cells_ref: Vec<&Cell> = Vec::new();
                for lt in &l.tuples()[range] {
                    for rt in r.tuples() {
                        ec.clock.tick().map_err(EngineError::from)?;
                        if let Some(f) = ec.fault.hit(fault::site::JOIN_TUPLE) {
                            return Err(injected(f));
                        }
                        cells_ref.clear();
                        cells_ref.extend(lt.cells.iter());
                        cells_ref.extend(rt.cells.iter());
                        let mm = pred(&ec, &cells_ref);
                        if !mm.may {
                            continue;
                        }
                        // Per-morsel heuristic; the authoritative cap check
                        // happens again at merge time below.
                        if out.len() >= cap {
                            return Err(EngineError::TooLarge("fused join result".into()));
                        }
                        let mut cells = Vec::with_capacity(cells_ref.len());
                        cells.extend(lt.cells.iter().cloned());
                        cells.extend(rt.cells.iter().cloned());
                        out.push(CompactTuple {
                            cells,
                            maybe: lt.maybe || rt.maybe || !mm.must,
                        });
                    }
                }
                Ok(out)
            })
        };
        self.note_section(&mr.stats);
        let mut out = CompactTable::new(cols);
        for t in mr.merge()? {
            if out.len() >= cap {
                return Err(EngineError::TooLarge("fused join result".into()));
            }
            out.push(t);
        }
        Ok(Arc::new(out))
    }

    /// Token-prefilter similarity join: precomputes a [`SimProfile`] per
    /// side and keeps only pairs that may match. Exact (non-maybe) when
    /// both cells are singletons.
    fn similar_join(
        &mut self,
        l: Arc<CompactTable>,
        r: Arc<CompactTable>,
        lcol: usize,
        rcol: usize,
        span: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        let profile = |cell: &Cell| -> crate::similarity::SimProfile {
            let mut tokens = std::collections::BTreeSet::new();
            for a in cell.assignments() {
                match a {
                    iflex_ctable::Assignment::Exact(v) => {
                        tokens.extend(crate::similarity::norm_tokens(&v.as_text(&self.store)));
                    }
                    iflex_ctable::Assignment::Contain(s) => {
                        tokens.extend(crate::similarity::norm_tokens(
                            self.store.span_text(s),
                        ));
                    }
                }
            }
            let singleton = cell
                .singleton(&self.store)
                .map(|v| v.as_text(&self.store).to_string());
            crate::similarity::SimProfile { tokens, singleton }
        };
        let lprof: Arc<Vec<_>> =
            Arc::new(l.tuples().iter().map(|t| profile(&t.cells[lcol])).collect());
        let rprof: Arc<Vec<_>> =
            Arc::new(r.tuples().iter().map(|t| profile(&t.cells[rcol])).collect());
        let mut cols = l.columns().to_vec();
        cols.extend(r.columns().iter().cloned());
        let cap = self.limits.max_result_tuples;

        // Morsel-scatter the outer side; profiles are index-aligned with
        // their tuples, so a morsel is a contiguous index range into both.
        let mr = {
            let ec = self.eval_ctx();
            let l = Arc::clone(&l);
            let r = Arc::clone(&r);
            let (lprof, rprof) = (Arc::clone(&lprof), Arc::clone(&rprof));
            crate::par::scatter(&self.section_ctx(span), l.len(), move |range| {
                let mut out = Vec::new();
                for i in range {
                    let lt = &l.tuples()[i];
                    let lp = &lprof[i];
                    for (rt, rp) in r.tuples().iter().zip(rprof.iter()) {
                        ec.clock.tick().map_err(EngineError::from)?;
                        if let Some(f) = ec.fault.hit(fault::site::JOIN_TUPLE) {
                            return Err(injected(f));
                        }
                        if !lp.may_match(rp) {
                            continue;
                        }
                        // Per-morsel heuristic; re-checked at merge time.
                        if out.len() >= cap {
                            return Err(EngineError::TooLarge("similarity join result".into()));
                        }
                        let mut cells = Vec::with_capacity(lt.cells.len() + rt.cells.len());
                        cells.extend(lt.cells.iter().cloned());
                        cells.extend(rt.cells.iter().cloned());
                        let must = lp.exact_pair(rp);
                        out.push(CompactTuple {
                            cells,
                            maybe: lt.maybe || rt.maybe || !must,
                        });
                    }
                }
                Ok(out)
            })
        };
        self.note_section(&mr.stats);
        let mut out = CompactTable::new(cols);
        for t in mr.merge()? {
            if out.len() >= cap {
                return Err(EngineError::TooLarge("similarity join result".into()));
            }
            out.push(t);
        }
        Ok(Arc::new(out))
    }

    /// Snapshots the engine's shared read-only handles for use inside a
    /// `'static` morsel closure. Pool workers outlive any one operator's
    /// stack frame, so per-tuple bodies cannot borrow `&Engine` — they
    /// capture an [`EvalCtx`] by value instead (all handles are `Arc`s or
    /// `Copy`, so a snapshot is a few refcount bumps).
    fn eval_ctx(&self) -> EvalCtx {
        EvalCtx {
            store: Arc::clone(&self.store),
            features: self.features.clone(),
            memo: Arc::clone(&self.memo),
            clock: Arc::clone(&self.clock),
            fault: Arc::clone(&self.fault),
            limits: self.limits,
        }
    }

    /// The morsel-scatter context for one operator section under `span`:
    /// the run's pool, the configured morsel bounds, and the handles the
    /// dispenser itself needs (cooperative clock, steal-site fault probe,
    /// per-morsel tracing).
    fn section_ctx(&self, span: SpanId) -> crate::par::SectionCtx<'_> {
        crate::par::SectionCtx {
            pool: self.pool.as_ref(),
            cfg: crate::par::MorselCfg {
                min: self.limits.morsel_tuples.0,
                max: self.limits.morsel_tuples.1,
            },
            clock: Some(Arc::clone(&self.clock)),
            fault: Some((*self.fault).clone()),
            trace: self.tracer.ctx(span).map(|(t, s)| (t.clone(), s)),
        }
    }

    /// Interprets a [`Plan::Fused`] batch pass: one streaming sweep that
    /// replays the folded selection steps per tuple (per *pair* over a
    /// cross-join input) and applies the trailing projection, so the
    /// interpreter materializes no intermediate table per operator.
    /// Results are byte-identical to the standalone operator chain by
    /// construction — the per-tuple bodies are the standalone operators'
    /// exact code paths, applied in the same order.
    ///
    /// Pure pipelines (no p-predicate filter steps, whose procedures are
    /// arbitrary host code) are additionally served from the memo's
    /// tuple-level cache when [`Limits::use_feature_memo`] is on:
    /// iterative sessions re-run near-identical rules against unchanged
    /// tables hundreds of times, and a tuple hit skips the entire
    /// pipeline. Entries are only read or written while the run clock has
    /// not tripped — past the deadline, candidate budgeting degrades
    /// conservatively, and degraded outcomes must never enter (or leave)
    /// the shared cache.
    #[allow(clippy::too_many_arguments)]
    fn eval_fused(
        &mut self,
        input: &Plan,
        ops: &[FusedOp],
        project: Option<&(Vec<usize>, Vec<String>)>,
        outer_right: bool,
        computed: &BTreeMap<String, Arc<CompactTable>>,
        sample: Option<Sample>,
        span: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        // Resolve every filter step's procedure once, up front.
        let mut filters: BTreeMap<String, crate::pfunc::FilterFn> = BTreeMap::new();
        for op in ops {
            if let FusedOp::FilterProc { name, .. } = op {
                let Some(Procedure::Filter(f)) = self.procs.get(name) else {
                    return Err(EngineError::BadProcedure(name.clone()));
                };
                filters.insert(name.clone(), f.clone());
            }
        }
        let memo_on = self.limits.use_feature_memo;
        // Per-constraint chain identities (feature-memo keys), aligned
        // with `ops` — computed once, not per tuple.
        let ctxs: Vec<Option<crate::memo::CellCtx>> = ops
            .iter()
            .map(|op| match op {
                FusedOp::Constraint {
                    constraint, priors, ..
                } if memo_on => Some(crate::constraint::chain_ctx(constraint, priors)),
                _ => None,
            })
            .collect();

        // Streaming mode: the fused pass sits directly on a cross join —
        // pairs are filtered as they are generated and the product is
        // never materialized.
        if let Plan::CrossJoin { left, right } = input {
            return self.eval_fused_join(
                left,
                right,
                ops,
                &ctxs,
                &filters,
                project,
                outer_right,
                computed,
                sample,
                span,
            );
        }

        // Linear mode: one pass over the input table.
        let t = self.eval_plan(input, computed, sample, span)?;
        let out_cols: Vec<String> = match project {
            Some((_, names)) => names.clone(),
            None => t.columns().to_vec(),
        };
        let pure = ops
            .iter()
            .all(|op| !matches!(op, FusedOp::FilterProc { .. }));
        let tctx = (memo_on && pure)
            .then(|| crate::memo::CellCtx::new(fused_cache_ctx(ops, project, &self.limits)));
        // Columnar mode (DESIGN.md §14): morsels slice column runs of
        // one shared conversion (second sight only — per-iteration
        // scratch tables take the row loop below) and the pipeline
        // evaluates distinct cells once per morsel; the tuple-level memo
        // serves rows the row path already resolved (and vice versa —
        // the entries are a pure function of the input cells, shared by
        // both arms).
        if let Some(ct) = self
            .limits
            .use_columnar
            .then(|| self.colshare.get_adaptive(&t))
            .flatten()
        {
            let mr = {
                let ec = self.eval_ctx();
                let ops = ops.to_vec();
                let ctxs = ctxs.clone();
                let filters = filters.clone();
                let tctx = tctx.clone();
                let proj: Option<Vec<usize>> = project.map(|(cols, _)| cols.clone());
                let ct = Arc::clone(&ct);
                crate::par::scatter(&self.section_ctx(span), ct.len(), move |range| {
                    ec.fused_columnar_run(
                        &ct,
                        range,
                        &ops,
                        &ctxs,
                        &filters,
                        tctx.as_ref(),
                        proj.as_deref(),
                    )
                })
            };
            self.note_section(&mr.stats);
            let mut out = CompactTable::new(out_cols);
            let mut volume = 0u64;
            for (tup, v) in mr.merge()? {
                volume = volume.saturating_add(v);
                out.push(tup);
            }
            if project.is_some() {
                self.counters.assignments_produced.add(volume);
            }
            return Ok(Arc::new(out));
        }
        let mr = {
            let ec = self.eval_ctx();
            let ops = ops.to_vec();
            let ctxs = ctxs.clone();
            let filters = filters.clone();
            let tctx = tctx.clone();
            let proj: Option<Vec<usize>> = project.map(|(cols, _)| cols.clone());
            let t = Arc::clone(&t);
            crate::par::scatter(&self.section_ctx(span), t.len(), move |range| {
                let mut out: Vec<(CompactTuple, u64)> = Vec::new();
                for tup in &t.tuples()[range] {
                    ec.clock.tick().map_err(EngineError::from)?;
                    let mut insert_hash = None;
                    if let Some(ctx) = &tctx {
                        if !ec.clock.tripped() {
                            let (h, hit) = ec.memo.get_tuple(ctx, &tup.cells);
                            if let Some(o) = hit {
                                if let Some(cells) = &o.cells {
                                    out.push((
                                        CompactTuple {
                                            cells: (**cells).clone(),
                                            maybe: tup.maybe || o.extra_maybe,
                                        },
                                        o.volume,
                                    ));
                                }
                                continue;
                            }
                            insert_hash = Some(h);
                        }
                    }
                    let mut cells = tup.cells.clone();
                    let mut extra = false;
                    if !ec.fused_apply(&ops, &ctxs, &filters, &mut cells, &mut extra)? {
                        if let (Some(ctx), Some(h)) = (&tctx, insert_hash) {
                            if !ec.clock.tripped() {
                                ec.memo.insert_tuple(
                                    h,
                                    ctx,
                                    &tup.cells,
                                    crate::memo::TupleOutcome {
                                        cells: None,
                                        extra_maybe: false,
                                        volume: 0,
                                    },
                                );
                            }
                        }
                        continue;
                    }
                    let volume = if proj.is_some() {
                        ec.cells_volume(&cells)
                    } else {
                        0
                    };
                    let final_cells: Vec<Cell> = match proj.as_deref() {
                        Some(cols) => cols.iter().map(|&c| cells[c].clone()).collect(),
                        None => cells,
                    };
                    if let (Some(ctx), Some(h)) = (&tctx, insert_hash) {
                        // Re-check: a trip *during* the pipeline means a
                        // budgeted enumeration may have degraded this
                        // outcome — never cache it.
                        if !ec.clock.tripped() {
                            ec.memo.insert_tuple(
                                h,
                                ctx,
                                &tup.cells,
                                crate::memo::TupleOutcome {
                                    cells: Some(Arc::new(final_cells.clone())),
                                    extra_maybe: extra,
                                    volume,
                                },
                            );
                        }
                    }
                    out.push((
                        CompactTuple {
                            cells: final_cells,
                            maybe: tup.maybe || extra,
                        },
                        volume,
                    ));
                }
                Ok(out)
            })
        };
        self.note_section(&mr.stats);
        let mut out = CompactTable::new(out_cols);
        let mut volume = 0u64;
        for (tup, v) in mr.merge()? {
            volume = volume.saturating_add(v);
            out.push(tup);
        }
        if project.is_some() {
            self.counters.assignments_produced.add(volume);
        }
        Ok(Arc::new(out))
    }

    /// The streaming (join-input) mode of [`Engine::eval_fused`]: the
    /// whole pipeline runs as the pair predicate of a fused join, with the
    /// projection applied to surviving pairs on the way out. With
    /// `outer_right` the (larger) right side is the sharded outer loop;
    /// tagging every emitted pair with its (left, right) indices and
    /// sorting afterwards restores left-major output order exactly, so a
    /// flipped join is byte-identical to an unflipped one.
    #[allow(clippy::too_many_arguments)]
    fn eval_fused_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        ops: &[FusedOp],
        ctxs: &[Option<crate::memo::CellCtx>],
        filters: &BTreeMap<String, crate::pfunc::FilterFn>,
        project: Option<&(Vec<usize>, Vec<String>)>,
        outer_right: bool,
        computed: &BTreeMap<String, Arc<CompactTable>>,
        sample: Option<Sample>,
        span: SpanId,
    ) -> Result<Arc<CompactTable>, EngineError> {
        let l = self.eval_plan(left, computed, sample, span)?;
        let r = self.eval_plan(right, computed, sample, span)?;
        let mut cols = l.columns().to_vec();
        cols.extend(r.columns().iter().cloned());
        let out_cols: Vec<String> = match project {
            Some((_, names)) => names.clone(),
            None => cols,
        };
        let cap = self.limits.max_result_tuples;

        // One pair: tick, fault probe, concatenate, pipeline, project.
        // `Arc`'d so both morsel branches can own a handle to it.
        type PairResult = Result<Option<(CompactTuple, u64)>, EngineError>;
        type PairFn =
            Arc<dyn Fn(&EvalCtx, &CompactTuple, &CompactTuple) -> PairResult + Send + Sync>;
        let eval_pair: PairFn = {
            let ops = ops.to_vec();
            let ctxs = ctxs.to_vec();
            let filters = filters.clone();
            let proj: Option<Vec<usize>> = project.map(|(c, _)| c.clone());
            Arc::new(move |ec, lt, rt| {
                ec.clock.tick().map_err(EngineError::from)?;
                if let Some(f) = ec.fault.hit(fault::site::JOIN_TUPLE) {
                    return Err(injected(f));
                }
                let mut cells = Vec::with_capacity(lt.cells.len() + rt.cells.len());
                cells.extend(lt.cells.iter().cloned());
                cells.extend(rt.cells.iter().cloned());
                let mut extra = false;
                if !ec.fused_apply(&ops, &ctxs, &filters, &mut cells, &mut extra)? {
                    return Ok(None);
                }
                let volume = if proj.is_some() {
                    ec.cells_volume(&cells)
                } else {
                    0
                };
                let final_cells: Vec<Cell> = match proj.as_deref() {
                    Some(cols) => cols.iter().map(|&c| cells[c].clone()).collect(),
                    None => cells,
                };
                Ok(Some((
                    CompactTuple {
                        cells: final_cells,
                        maybe: lt.maybe || rt.maybe || extra,
                    },
                    volume,
                )))
            })
        };

        let rows: Vec<(CompactTuple, u64)> = if outer_right {
            let mr = {
                let ec = self.eval_ctx();
                let l = Arc::clone(&l);
                let r = Arc::clone(&r);
                let eval_pair = Arc::clone(&eval_pair);
                crate::par::scatter(&self.section_ctx(span), r.len(), move |range| {
                    let mut out = Vec::new();
                    for ri in range {
                        let rt = &r.tuples()[ri];
                        for (li, lt) in l.tuples().iter().enumerate() {
                            if let Some(row) = eval_pair(&ec, lt, rt)? {
                                // Per-morsel heuristic; re-checked at merge.
                                if out.len() >= cap {
                                    return Err(EngineError::TooLarge(
                                        "fused join result".into(),
                                    ));
                                }
                                out.push(((li, ri), row));
                            }
                        }
                    }
                    Ok(out)
                })
            };
            self.note_section(&mr.stats);
            let mut tagged = mr.merge()?;
            tagged.sort_by_key(|(k, _)| *k);
            tagged.into_iter().map(|(_, row)| row).collect()
        } else {
            let mr = {
                let ec = self.eval_ctx();
                let l = Arc::clone(&l);
                let r = Arc::clone(&r);
                let eval_pair = Arc::clone(&eval_pair);
                crate::par::scatter(&self.section_ctx(span), l.len(), move |range| {
                    let mut out = Vec::new();
                    for lt in &l.tuples()[range] {
                        for rt in r.tuples() {
                            if let Some(row) = eval_pair(&ec, lt, rt)? {
                                // Per-morsel heuristic; re-checked at merge.
                                if out.len() >= cap {
                                    return Err(EngineError::TooLarge(
                                        "fused join result".into(),
                                    ));
                                }
                                out.push(row);
                            }
                        }
                    }
                    Ok(out)
                })
            };
            self.note_section(&mr.stats);
            mr.merge()?
        };

        let mut out = CompactTable::new(out_cols);
        let mut volume = 0u64;
        for (tup, v) in rows {
            if out.len() >= cap {
                return Err(EngineError::TooLarge("fused join result".into()));
            }
            volume = volume.saturating_add(v);
            out.push(tup);
        }
        if project.is_some() {
            self.counters.assignments_produced.add(volume);
        }
        Ok(Arc::new(out))
    }

}

/// Everything an operator's per-tuple body needs from the engine, as
/// owned (`Arc`-shared) handles. Morsel closures run on the run's
/// worker pool, whose threads outlive any one operator's stack frame —
/// so the bodies capture this snapshot by value instead of borrowing
/// `&Engine`. All handles alias the engine's own (the memo, clock, and
/// fault plan share state with the engine that built the snapshot).
#[derive(Clone)]
struct EvalCtx {
    store: Arc<DocumentStore>,
    features: FeatureRegistry,
    memo: Arc<crate::memo::FeatureMemo>,
    clock: Arc<RunClock>,
    fault: Arc<FaultPlan>,
    limits: Limits,
}

impl EvalCtx {
    /// The feature memo, when [`Limits::use_feature_memo`] is on.
    fn memo_opt(&self) -> Option<&crate::memo::FeatureMemo> {
        self.limits.use_feature_memo.then_some(self.memo.as_ref())
    }

    fn cell_operand_cands(&self, op: &Operand, cells: &[&Cell]) -> Cands {
        match op {
            Operand::Col(c) => candidates_budgeted(
                cells[*c],
                &self.store,
                self.limits.cmp_enum_cap,
                self.clock.tripped(),
            ),
            Operand::Const(v) => Cands::Full(vec![v.clone()]),
        }
    }

    fn operand_cands(&self, op: &Operand, tup: &CompactTuple) -> Cands {
        match op {
            Operand::Col(c) => candidates_budgeted(
                &tup.cells[*c],
                &self.store,
                self.limits.cmp_enum_cap,
                self.clock.tripped(),
            ),
            Operand::Const(v) => Cands::Full(vec![v.clone()]),
        }
    }

    /// Replays the fused selection steps against one tuple's cells, in
    /// order, using the standalone operators' exact per-tuple bodies.
    /// Returns `Ok(false)` when a step drops the tuple; `extra` collects
    /// the may/must widening (`maybe |= extra` at emission).
    fn fused_apply(
        &self,
        ops: &[FusedOp],
        ctxs: &[Option<crate::memo::CellCtx>],
        filters: &BTreeMap<String, crate::pfunc::FilterFn>,
        cells: &mut [Cell],
        extra: &mut bool,
    ) -> Result<bool, EngineError> {
        let memo = self.memo_opt();
        for (op, ctx) in ops.iter().zip(ctxs) {
            match op {
                FusedOp::Constraint {
                    col,
                    constraint,
                    priors,
                } => {
                    let new_cell = match (memo, ctx.as_ref()) {
                        (Some(m), Some(c)) => crate::constraint::apply_constraint_cached(
                            &cells[*col],
                            constraint,
                            priors,
                            &self.store,
                            &self.features,
                            m,
                            c,
                        )?,
                        _ => crate::constraint::apply_constraint_memo(
                            &cells[*col],
                            constraint,
                            priors,
                            &self.store,
                            &self.features,
                            None,
                        )?,
                    };
                    if new_cell.is_empty() {
                        return Ok(false);
                    }
                    cells[*col] = new_cell;
                }
                FusedOp::Compare {
                    left,
                    op,
                    right,
                    offset,
                } => {
                    let lc = self.fused_operand_cands(left, cells);
                    let rc = shift_cands(
                        self.fused_operand_cands(right, cells),
                        *offset,
                        &self.store,
                    );
                    let mm = compare_cands(&lc, *op, &rc, &self.store);
                    if !mm.may {
                        return Ok(false);
                    }
                    *extra |= !mm.must;
                }
                FusedOp::VarUnify { col_a, col_b } => {
                    let mm = cells_may_equal(
                        &cells[*col_a],
                        &cells[*col_b],
                        &self.store,
                        self.limits.cmp_enum_cap,
                    );
                    if !mm.may {
                        return Ok(false);
                    }
                    *extra |= !mm.must;
                }
                FusedOp::FilterProc { name, cols } => {
                    let f = filters
                        .get(name)
                        .ok_or_else(|| EngineError::BadProcedure(name.clone()))?;
                    let cands: Vec<Cands> = cols
                        .iter()
                        .map(|&c| {
                            candidates_budgeted(
                                &cells[c],
                                &self.store,
                                self.limits.enum_cap,
                                self.clock.tripped(),
                            )
                        })
                        .collect();
                    let mm = filter_cands(
                        &cands,
                        &|args: &[Value]| f(&self.store, args),
                        self.limits.combo_cap,
                    );
                    if !mm.may {
                        return Ok(false);
                    }
                    *extra |= !mm.must;
                }
            }
        }
        Ok(true)
    }

    /// [`EvalCtx::operand_cands`] over a bare cell slice (a fused pass
    /// carries cells, not a built tuple).
    fn fused_operand_cands(&self, op: &Operand, cells: &[Cell]) -> Cands {
        match op {
            Operand::Col(c) => candidates_budgeted(
                &cells[*c],
                &self.store,
                self.limits.cmp_enum_cap,
                self.clock.tripped(),
            ),
            Operand::Const(v) => Cands::Full(vec![v.clone()]),
        }
    }

    /// One tuple's contribution to the pre-projection convergence-signal
    /// volume — exactly the [`Plan::Project`] accounting, applied per
    /// tuple so a fused π feeds the §5.1 convergence monitor the same
    /// number the standalone π would.
    fn cells_volume(&self, cells: &[Cell]) -> u64 {
        cells.iter().fold(0u64, |acc, c| {
            acc.saturating_add(c.value_count(&self.store).min(1 << 20))
        })
    }

    /// [`EvalCtx::fused_operand_cands`] over one morsel's column runs.
    fn run_operand_cands(&self, op: &Operand, runs: &[Option<ColRun>], i: usize) -> Cands {
        match op {
            Operand::Col(c) => candidates_budgeted(
                run_cell(runs, *c, i),
                &self.store,
                self.limits.cmp_enum_cap,
                self.clock.tripped(),
            ),
            Operand::Const(v) => Cands::Full(vec![v.clone()]),
        }
    }

    /// The columnar counterpart of the per-tuple fused pass (DESIGN.md
    /// §14): evaluates the pipeline over one morsel's slice of a
    /// [`ColumnarTable`]'s column runs, op by op, evaluating each
    /// *distinct* cell (or distinct cell pair) once per morsel instead of
    /// once per row:
    ///
    /// * constraint steps collect the distinct live cells of their column
    ///   and go through the batch [`crate::constraint::apply_constraint_run`]
    ///   entry point — one `refine_run`/`verify_value_run` seed per run;
    /// * comparisons and variable unifications memoize their
    ///   [`MayMust`] verdict per distinct cell pair (skipped once the run
    ///   clock has tripped — budgeted enumerations may then degrade, and
    ///   degraded verdicts must not be replayed);
    /// * p-predicate filters run per row, exactly like the row path —
    ///   filter procedures are arbitrary host code, the same reason the
    ///   tuple-level memo excludes them.
    ///
    /// Byte-identity with the row path holds by construction: the
    /// per-distinct-cell bodies are the standalone operators' exact code
    /// paths, features are pure (so deduplication changes cost, never
    /// results), the conversion is lossless, and the per-row tick count
    /// is unchanged. Pure pipelines additionally consult the same
    /// tuple-level cache as the row path (`tctx`): the cache is
    /// content-keyed, so iterative sessions re-running the same rules
    /// over rebuilt-but-equal tables hit across runs even where the
    /// pointer-keyed conversion cache misses, and the entries are a pure
    /// function of the input cells — both arms read and write the same
    /// mapping, so sharing it is invisible in the output.
    #[allow(clippy::too_many_arguments)]
    fn fused_columnar_run(
        &self,
        ct: &ColumnarTable,
        range: Range<usize>,
        ops: &[FusedOp],
        ctxs: &[Option<crate::memo::CellCtx>],
        filters: &BTreeMap<String, crate::pfunc::FilterFn>,
        tctx: Option<&crate::memo::CellCtx>,
        proj: Option<&[usize]>,
    ) -> Result<Vec<(CompactTuple, u64)>, EngineError> {
        let n = range.len();
        // Same budget accounting as the row path: one tick per input row.
        for _ in 0..n {
            self.clock.tick().map_err(EngineError::from)?;
        }
        let mut alive = vec![true; n];
        let mut extra = vec![false; n];
        // Tuple-level memo probe, once per *distinct column-id signature*:
        // duplicate rows share an allocation-light `u32` signature, so
        // cell contents are materialized and hashed once per distinct
        // tuple, not once per row. Hits (including cached kills) bypass
        // the group machinery entirely; misses remember their hash and
        // key and are inserted on the way out. Reads and writes stop once
        // the run clock trips, exactly like the row path — degraded
        // outcomes must never enter or leave the shared cache (serving
        // already-probed signatures stays pure either way).
        const NO_SIG: u32 = u32::MAX;
        let mut sig_of: Vec<u32> = vec![NO_SIG; n];
        let mut sig_served: Vec<Option<crate::memo::TupleOutcome>> = Vec::new();
        let mut sig_pending: Vec<Option<(u64, Vec<Cell>)>> = Vec::new();
        if let Some(ctx) = tctx {
            let mut remap: HashMap<Vec<u32>, u32> = HashMap::new();
            for i in 0..n {
                if self.clock.tripped() {
                    break;
                }
                let row = range.start + i;
                let sig: Vec<u32> = (0..ct.arity()).map(|c| ct.col(c).cell_id(row)).collect();
                let s = match remap.entry(sig) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let key = ct.row_cells(row);
                        let (h, hit) = self.memo.get_tuple(ctx, &key);
                        let s = sig_served.len() as u32;
                        match hit {
                            Some(o) => {
                                sig_served.push(Some(o));
                                sig_pending.push(None);
                            }
                            None => {
                                sig_served.push(None);
                                sig_pending.push(Some((h, key)));
                            }
                        }
                        *e.insert(s)
                    }
                };
                sig_of[i] = s;
                if sig_served[s as usize].is_some() {
                    alive[i] = false;
                }
            }
        }
        let mut runs: Vec<Option<ColRun>> = (0..ct.arity()).map(|_| None).collect();
        let ensure = |runs: &mut Vec<Option<ColRun>>, c: usize| {
            if runs[c].is_none() {
                runs[c] = Some(ColRun::new(ct, c, &range));
            }
        };
        for (op, ctx) in ops.iter().zip(ctxs) {
            match op {
                FusedOp::Constraint {
                    col,
                    constraint,
                    priors,
                } => {
                    ensure(&mut runs, *col);
                    let run = runs[*col].as_mut().expect("run just ensured");
                    // Distinct cells still referenced by a live row — dead
                    // rows never reach this op in the row path either.
                    let mut live = vec![false; run.reps.len()];
                    for (i, &g) in run.groups.iter().enumerate() {
                        if alive[i] {
                            live[g as usize] = true;
                        }
                    }
                    let idxs: Vec<usize> = (0..run.reps.len()).filter(|&g| live[g]).collect();
                    let refs: Vec<&Cell> = idxs.iter().map(|&g| &run.reps[g]).collect();
                    let outs = crate::constraint::apply_constraint_run(
                        &refs,
                        constraint,
                        priors,
                        &self.store,
                        &self.features,
                        self.memo_opt(),
                        ctx.as_ref(),
                    )?;
                    let mut emptied = vec![false; run.reps.len()];
                    for (&g, out) in idxs.iter().zip(outs) {
                        if out.is_empty() {
                            emptied[g] = true;
                        } else {
                            run.reps[g] = out;
                        }
                    }
                    for (i, &g) in run.groups.iter().enumerate() {
                        if emptied[g as usize] {
                            alive[i] = false;
                        }
                    }
                }
                FusedOp::Compare {
                    left,
                    op,
                    right,
                    offset,
                } => {
                    if let Operand::Col(c) = left {
                        ensure(&mut runs, *c);
                    }
                    if let Operand::Col(c) = right {
                        ensure(&mut runs, *c);
                    }
                    let mut cache: HashMap<(u32, u32), MayMust> = HashMap::new();
                    for i in 0..n {
                        if !alive[i] {
                            continue;
                        }
                        let key = (operand_group(left, &runs, i), operand_group(right, &runs, i));
                        let cached = (!self.clock.tripped())
                            .then(|| cache.get(&key).copied())
                            .flatten();
                        let mm = match cached {
                            Some(mm) => mm,
                            None => {
                                let lc = self.run_operand_cands(left, &runs, i);
                                let rc = shift_cands(
                                    self.run_operand_cands(right, &runs, i),
                                    *offset,
                                    &self.store,
                                );
                                let mm = compare_cands(&lc, *op, &rc, &self.store);
                                if !self.clock.tripped() {
                                    cache.insert(key, mm);
                                }
                                mm
                            }
                        };
                        if !mm.may {
                            alive[i] = false;
                        } else {
                            extra[i] |= !mm.must;
                        }
                    }
                }
                FusedOp::VarUnify { col_a, col_b } => {
                    ensure(&mut runs, *col_a);
                    ensure(&mut runs, *col_b);
                    let mut cache: HashMap<(u32, u32), MayMust> = HashMap::new();
                    for i in 0..n {
                        if !alive[i] {
                            continue;
                        }
                        let key = (group_of(&runs, *col_a, i), group_of(&runs, *col_b, i));
                        let mm = match cache.get(&key) {
                            Some(&mm) => mm,
                            None => {
                                let mm = cells_may_equal(
                                    run_cell(&runs, *col_a, i),
                                    run_cell(&runs, *col_b, i),
                                    &self.store,
                                    self.limits.cmp_enum_cap,
                                );
                                cache.insert(key, mm);
                                mm
                            }
                        };
                        if !mm.may {
                            alive[i] = false;
                        } else {
                            extra[i] |= !mm.must;
                        }
                    }
                }
                FusedOp::FilterProc { name, cols } => {
                    for &c in cols {
                        ensure(&mut runs, c);
                    }
                    let f = filters
                        .get(name)
                        .ok_or_else(|| EngineError::BadProcedure(name.clone()))?;
                    for i in 0..n {
                        if !alive[i] {
                            continue;
                        }
                        let cands: Vec<Cands> = cols
                            .iter()
                            .map(|&c| {
                                candidates_budgeted(
                                    run_cell(&runs, c, i),
                                    &self.store,
                                    self.limits.enum_cap,
                                    self.clock.tripped(),
                                )
                            })
                            .collect();
                        let mm = filter_cands(
                            &cands,
                            &|args: &[Value]| f(&self.store, args),
                            self.limits.combo_cap,
                        );
                        if !mm.may {
                            alive[i] = false;
                        } else {
                            extra[i] |= !mm.must;
                        }
                    }
                }
            }
        }
        // Emission: survivors materialize per distinct cell (cloned per
        // row); with a projection the convergence volume sums every
        // column's value count, memoized per distinct cell.
        if alive.iter().any(|&a| a) {
            for c in 0..ct.arity() {
                ensure(&mut runs, c);
            }
        }
        let mut gvol: Vec<Vec<Option<u64>>> = runs
            .iter()
            .map(|r| match r {
                Some(r) => vec![None; r.reps.len()],
                None => Vec::new(),
            })
            .collect();
        let mut out = Vec::new();
        for i in 0..n {
            let row = range.start + i;
            let sig = sig_of[i];
            // A tuple-memo hit replays its cached outcome verbatim (the
            // outcome is per-signature; the input row's own maybe flag
            // composes outside the cache, as in the row path).
            if sig != NO_SIG {
                if let Some(o) = &sig_served[sig as usize] {
                    if let Some(cells) = &o.cells {
                        out.push((
                            CompactTuple {
                                cells: (**cells).clone(),
                                maybe: ct.maybe(row) || o.extra_maybe,
                            },
                            o.volume,
                        ));
                    }
                    continue;
                }
            }
            if !alive[i] {
                // A probed miss the pipeline then dropped: cache the kill
                // (once per signature) so later runs skip it outright.
                if sig != NO_SIG {
                    if let (Some(ctx), Some((h, key))) =
                        (tctx, sig_pending[sig as usize].take())
                    {
                        if !self.clock.tripped() {
                            self.memo.insert_tuple(
                                h,
                                ctx,
                                &key,
                                crate::memo::TupleOutcome {
                                    cells: None,
                                    extra_maybe: false,
                                    volume: 0,
                                },
                            );
                        }
                    }
                }
                continue;
            }
            let volume = if proj.is_some() {
                let mut acc = 0u64;
                for c in 0..ct.arity() {
                    let r = runs[c].as_ref().expect("all runs ensured");
                    let g = r.groups[i] as usize;
                    let v = *gvol[c][g]
                        .get_or_insert_with(|| r.reps[g].value_count(&self.store).min(1 << 20));
                    acc = acc.saturating_add(v);
                }
                acc
            } else {
                0
            };
            let cells: Vec<Cell> = match proj {
                Some(cols) => cols.iter().map(|&c| run_cell(&runs, c, i).clone()).collect(),
                None => (0..ct.arity())
                    .map(|c| run_cell(&runs, c, i).clone())
                    .collect(),
            };
            if sig != NO_SIG {
                if let (Some(ctx), Some((h, key))) = (tctx, sig_pending[sig as usize].take()) {
                    // Re-check: a trip *during* the pipeline means a
                    // budgeted enumeration may have degraded this outcome
                    // — never cache it.
                    if !self.clock.tripped() {
                        self.memo.insert_tuple(
                            h,
                            ctx,
                            &key,
                            crate::memo::TupleOutcome {
                                cells: Some(Arc::new(cells.clone())),
                                extra_maybe: extra[i],
                                volume,
                            },
                        );
                    }
                }
            }
            out.push((
                CompactTuple {
                    cells,
                    maybe: ct.maybe(row) || extra[i],
                },
                volume,
            ));
        }
        Ok(out)
    }
}

/// One column's evaluation state inside one columnar morsel: a dense
/// group id per local row over representative cells, seeded from the
/// column dictionary's id run. Constraint steps rewrite representatives
/// in place — rows that shared an input cell keep sharing the output
/// cell, so the grouping survives the whole pipeline (no later op splits
/// a group: comparisons and filters only drop rows or widen `maybe`).
struct ColRun {
    /// Per local row: index into `reps`.
    groups: Vec<u32>,
    /// Representative (current) cell contents per group.
    reps: Vec<Cell>,
}

impl ColRun {
    fn new(ct: &ColumnarTable, c: usize, range: &Range<usize>) -> ColRun {
        let ids = &ct.col(c).ids()[range.clone()];
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut groups = Vec::with_capacity(ids.len());
        let mut reps: Vec<Cell> = Vec::new();
        for &id in ids {
            let g = *remap.entry(id).or_insert_with(|| {
                reps.push(ct.materialize(c, id));
                (reps.len() - 1) as u32
            });
            groups.push(g);
        }
        ColRun { groups, reps }
    }
}

/// The current cell of local row `i` in column `c` (the run must have
/// been initialized).
fn run_cell(runs: &[Option<ColRun>], c: usize, i: usize) -> &Cell {
    let r = runs[c].as_ref().expect("column run initialized before read");
    &r.reps[r.groups[i] as usize]
}

/// The group id of local row `i` in column `c`.
fn group_of(runs: &[Option<ColRun>], c: usize, i: usize) -> u32 {
    let r = runs[c].as_ref().expect("column run initialized before read");
    r.groups[i]
}

/// The memo-key group of an operand: a column's group id, or `u32::MAX`
/// for a constant (one constant per op, so the sentinel cannot collide
/// with a second distinct constant).
fn operand_group(op: &Operand, runs: &[Option<ColRun>], i: usize) -> u32 {
    match op {
        Operand::Col(c) => group_of(runs, *c, i),
        Operand::Const(_) => u32::MAX,
    }
}

/// Injective identity of a fused pipeline for the memo's tuple-level
/// cache: the ops and projection via their `Debug` rendering (Rust
/// renders floats as shortest-round-trip strings, so distinct pipelines
/// render distinctly), salted with every limit that changes a budgeted
/// candidate enumeration — cache entries are shared across sessions of
/// one [`EngineCore`], and sessions may run with different budgets.
fn fused_cache_ctx(
    ops: &[FusedOp],
    project: Option<&(Vec<usize>, Vec<String>)>,
    limits: &Limits,
) -> String {
    format!(
        "fused|{ops:?}|{project:?}|cmp{}|enum{}|combo{}",
        limits.cmp_enum_cap, limits.enum_cap, limits.combo_cap
    )
}

/// Adds a constant offset to the numeric values of a candidate set (the
/// `+ n` arithmetic of comparisons). Non-numeric values pass through —
/// they cannot satisfy an arithmetic comparison anyway.
fn shift_cands(c: Cands, offset: f64, store: &DocumentStore) -> Cands {
    if offset == 0.0 {
        return c;
    }
    let map = |vals: Vec<Value>| -> Vec<Value> {
        vals.into_iter()
            .map(|v| match v.as_num(store) {
                Some(n) => Value::Num(n + offset),
                None => v,
            })
            .collect()
    };
    match c {
        Cands::Full(v) => Cands::Full(map(v)),
        Cands::NumericOnly(v) => Cands::NumericOnly(map(v)),
        Cands::Unknown => Cands::Unknown,
    }
}

/// Convenience: the union of all tuples across all worlds (what a user
/// sifting through the result sees), as `(values..)` rows of rendered text.
pub fn render_universe(
    table: &CompactTable,
    store: &DocumentStore,
    budget: usize,
) -> Result<Vec<Vec<String>>, EngineError> {
    let rel = iflex_ctable::worlds::tuple_universe(table, store, budget)
        .map_err(|e| EngineError::TooLarge(e.to_string()))?;
    Ok(rel
        .into_iter()
        .map(|row| {
            row.iter()
                .map(|v| v.as_text(store).to_string())
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Trigger;
    use iflex_alog::parse_program;

    /// Builds a store with the Figure 1 example pages and an engine over it.
    fn example_engine() -> (Engine, Vec<DocId>, Vec<DocId>) {
        let mut store = DocumentStore::new();
        let x1 = store.add_markup(
            "<title>$351,000</title>Cozy house on quiet street. 5146 Windsor Ave., Champaign \
             <b>Sqft: 2750</b> High school: <i>Vanhise High</i> price 351000",
        );
        let x2 = store.add_markup(
            "<title>$619,000</title>Amazing house in great location. 3112 Stonecreek Blvd., \
             Cherry Hills <b>Sqft: 4700</b> High school: <i>Basktall HS</i> price 619000",
        );
        let y1 = store.add_markup(
            "<h2>Top High Schools and Location (page 1)</h2><b>Basktall</b>, Cherry Hills \
             <b>Franklin</b>, Robeson <b>Vanhise</b>, Champaign",
        );
        let y2 = store.add_markup(
            "<h2>Top High Schools and Location (page 2)</h2><b>Hoover</b>, Akron \
             <b>Ossage</b>, Lynneville",
        );
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("housePages", &[x1, x2]);
        eng.add_doc_table("schoolPages", &[y1, y2]);
        (eng, vec![x1, x2], vec![y1, y2])
    }

    #[test]
    fn numeric_extraction_on_figure1() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        let out = eng.run(&prog).unwrap();
        // one tuple per house page, p an expansion cell over its numbers
        assert_eq!(out.len(), 2);
        let store = eng.store();
        for t in out.tuples() {
            assert!(t.cells[1].is_expand());
            assert!(t.cells[1].value_count(store) >= 3);
        }
    }

    #[test]
    fn comparison_prunes_pages() {
        // Example 1.1: only pages with a number above 500000 survive.
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            big(x, p) :- housePages(x), extractPrice(#x, p), p > 500000.
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        let out = eng.run(&prog).unwrap();
        assert_eq!(out.len(), 1);
        // the kept tuple is maybe (not all candidate prices exceed 500000)
        assert!(out.tuples()[0].maybe);
    }

    #[test]
    fn full_figure2_pipeline() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
            schools(s)? :- schoolPages(y), extractSchools(#y, s).
            Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                             a > 4500, approxMatch(#h, #s).
            extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                          numeric(p) = yes, numeric(a) = yes,
                                          italic-font(h) = yes.
            extractSchools(#y, s) :- from(#y, s), bold-font(s) = yes.
        "#,
        )
        .unwrap();
        let out = eng.run(&prog).unwrap();
        // Only house x2 (619000 / 4700 / "Basktall HS") can satisfy Q.
        assert!(!out.is_empty());
        let store = eng.store();
        for t in out.tuples() {
            let h_vals = t.cells[3].value_set(store);
            assert!(h_vals
                .iter()
                .any(|v| v.as_text(store).contains("Basktall")));
        }
    }

    #[test]
    fn existence_annotation_propagates() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            schools(s)? :- schoolPages(y), extractSchools(#y, s).
            extractSchools(#y, s) :- from(#y, s), bold-font(s) = yes.
        "#,
        )
        .unwrap();
        let out = eng.run(&prog).unwrap();
        assert!(out.tuples().iter().all(|t| t.maybe));
    }

    #[test]
    fn reuse_cache_hits_on_second_run() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        eng.run(&prog).unwrap();
        assert_eq!(eng.stats.cache_hits, 0);
        eng.run(&prog).unwrap();
        assert!(eng.stats.cache_hits >= 1);
        assert_eq!(eng.stats.rules_evaluated, 0);
    }

    #[test]
    fn refined_rule_recomputes_only_changed_rule() {
        let (mut eng, _, _) = example_engine();
        let p1 = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            other(y) :- schoolPages(y).
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        eng.run(&p1).unwrap();
        let p2 = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            other(y) :- schoolPages(y).
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes, min-value(p) = 1000.
        "#,
        )
        .unwrap();
        eng.run(&p2).unwrap();
        // `other` is unchanged → cache hit; `houses` changed → recomputed.
        assert_eq!(eng.stats.cache_hits, 1);
        assert_eq!(eng.stats.rules_evaluated, 1);
    }

    #[test]
    fn upstream_refinement_invalidates_dependent_cache() {
        // Regression: rule Q is unchanged between runs, but its input
        // relation `houses` gains a constraint — Q must be recomputed.
        let (mut eng, _, _) = example_engine();
        let p1 = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            q(x, p) :- houses(x, p), p > 500000.
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        let r1 = eng.run(&p1).unwrap();
        let p2 = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            q(x, p) :- houses(x, p), p > 500000.
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes,
                                   preceded-by(p) = "price".
        "#,
        )
        .unwrap();
        let r2 = eng.run(&p2).unwrap();
        let store = eng.store();
        let v1 = r1.tuples()[0].cells[1].value_set(store).len();
        let v2 = r2.tuples()[0].cells[1].value_set(store).len();
        assert!(v2 < v1, "refinement must narrow the cached dependent: {v1} -> {v2}");
        assert_eq!(v2, 1);
    }

    #[test]
    fn explain_renders_plans_in_order() {
        let (eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            q(x) :- houses(x, p), p > 500000.
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        let text = eng.explain(&prog).unwrap();
        let houses_at = text.find("-- houses").unwrap();
        let q_at = text.find("-- q(").unwrap();
        assert!(houses_at < q_at, "dependencies explained first:
{text}");
        assert!(text.contains("FromExtract"));
        assert!(text.contains("σ[numeric"));
        assert!(text.contains("ScanRel(houses)"));
    }

    #[test]
    fn sampling_reduces_input() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            houses(x, p) :- housePages(x), extractPrice(#x, p).
            extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        let full = eng.run(&prog).unwrap();
        let sampled = eng
            .run_sampled(&prog, Sample::new(0.5, 123))
            .unwrap();
        assert!(sampled.len() <= full.len());
        assert!(!sampled.is_empty());
    }

    #[test]
    fn validation_errors_surface() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program("q(x) :- nothere(x).").unwrap();
        assert!(matches!(
            eng.run(&prog),
            Err(EngineError::Validation(_))
        ));
    }

    #[test]
    fn generator_procedure_runs() {
        let (mut eng, _, _) = example_engine();
        eng.procs_mut().register_generator("tag", 1, |_, args| {
            vec![vec![Value::Str(format!("tag:{}", args[0]))]]
        });
        let prog = parse_program("q(x, t) :- housePages(x), tag(#x, t).").unwrap();
        let out = eng.run(&prog).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.tuples().iter().all(|t| !t.maybe));
    }

    #[test]
    fn generator_on_uncertain_input_marks_maybe() {
        // §4.1: p-predicate outputs become maybe when the input tuple
        // represents more than one possible input (|V| > 1).
        let mut store = DocumentStore::new();
        let d = store.add_plain("10 20");
        let store = Arc::new(store);
        let mut eng = Engine::new(store);
        eng.add_doc_table("pages", &[d]);
        eng.procs_mut().register_generator("double", 1, |st, args| {
            args[0]
                .as_num(st)
                .map(|n| vec![vec![Value::Num(n * 2.0)]])
                .unwrap_or_default()
        });
        let prog = parse_program(
            r#"
            q(v, w) :- pages(x), e(#x, v), double(#v, w).
            e(#x, v) :- from(#x, v), numeric(v) = yes.
        "#,
        )
        .unwrap();
        let out = eng.run(&prog).unwrap();
        // the expansion cell enumerates both numbers: each invocation has a
        // single concrete input → tuples are certain
        assert_eq!(out.len(), 2);
        assert!(out.tuples().iter().all(|t| !t.maybe));
        let store = eng.store();
        let ws: std::collections::BTreeSet<String> = out
            .tuples()
            .iter()
            .flat_map(|t| t.cells[1].values(store).map(|v| v.as_text(store).to_string()))
            .collect();
        assert!(ws.contains("20") && ws.contains("40"), "{ws:?}");
    }

    #[test]
    fn comparison_against_null_constant() {
        let store = Arc::new(DocumentStore::new());
        let mut eng = Engine::new(store);
        eng.add_table(
            "vals",
            CompactTable::from_exact_rows(
                vec!["v".into()],
                vec![vec![Value::Num(1.0)], vec![Value::Null]],
            ),
        );
        let keep_non_null = parse_program("q(v) :- vals(v), v != NULL.").unwrap();
        let out = eng.run(&keep_non_null).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].cells[0].exact_singleton(), Some(&Value::Num(1.0)));
        let keep_null = parse_program("q(v) :- vals(v), v = NULL.").unwrap();
        let out = eng.run(&keep_null).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.tuples()[0].cells[0].exact_singleton().unwrap().is_null());
    }

    #[test]
    fn projection_keeps_bag_semantics() {
        let store = Arc::new(DocumentStore::new());
        let mut eng = Engine::new(store);
        eng.add_table(
            "r",
            CompactTable::from_exact_rows(
                vec!["a".into(), "b".into()],
                vec![
                    vec![Value::Num(1.0), Value::Num(10.0)],
                    vec![Value::Num(1.0), Value::Num(20.0)],
                ],
            ),
        );
        // projecting away b keeps both tuples (multiset, §3)
        let prog = parse_program("q(a) :- r(a, b).").unwrap();
        assert_eq!(eng.run(&prog).unwrap().len(), 2);
    }

    #[test]
    fn from_on_non_span_value_drops_tuple() {
        let store = Arc::new(DocumentStore::new());
        let mut eng = Engine::new(store);
        eng.add_table(
            "nums",
            CompactTable::from_exact_rows(vec!["n".into()], vec![vec![Value::Num(5.0)]]),
        );
        let prog = parse_program("q(n, s) :- nums(n), from(#n, s).").unwrap();
        // nothing to extract from a number: empty result, not an error
        assert!(eng.run(&prog).unwrap().is_empty());
    }

    #[test]
    fn constant_in_predicate_selects() {
        let store = Arc::new(DocumentStore::new());
        let mut eng = Engine::new(store);
        eng.add_table(
            "nums",
            CompactTable::from_exact_rows(
                vec!["a".into(), "b".into()],
                vec![
                    vec![Value::Num(1.0), Value::Num(10.0)],
                    vec![Value::Num(2.0), Value::Num(20.0)],
                ],
            ),
        );
        let prog = parse_program("q(b) :- nums(a, b), a = 2.").unwrap();
        let out = eng.run(&prog).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.tuples()[0].cells[0].exact_singleton(),
            Some(&Value::Num(20.0))
        );
    }

    #[test]
    fn render_universe_resolves_text() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program(
            r#"
            q(p) :- housePages(x), e(#x, p), p > 500000.
            e(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        )
        .unwrap();
        let table = eng.run(&prog).unwrap();
        let rows = render_universe(&table, eng.store(), 10_000).unwrap();
        assert!(rows.iter().any(|r| r[0] == "619000"), "{rows:?}");
        assert!(rows.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn ext_tables_lists_registrations() {
        let (eng, houses, schools) = example_engine();
        let names: Vec<&str> = eng.ext_tables().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["housePages", "schoolPages"]);
        let sizes: Vec<usize> = eng.ext_tables().map(|(_, t)| t.len()).collect();
        assert_eq!(sizes, vec![houses.len(), schools.len()]);
    }

    #[test]
    fn threads_env_value_parsing() {
        assert_eq!(parse_threads_value("4"), Some(4));
        assert_eq!(parse_threads_value("  8 "), Some(8));
        assert_eq!(parse_threads_value("0"), None, "zero threads is invalid");
        assert_eq!(parse_threads_value("-2"), None);
        assert_eq!(parse_threads_value("four"), None);
        assert_eq!(parse_threads_value(""), None);
    }

    #[test]
    fn core_fork_shares_caches_but_isolates_faults() {
        let (mut eng, _, _) = example_engine();
        let prog = parse_program("q(x) :- housePages(x).").unwrap();
        eng.run(&prog).unwrap(); // warm the incremental cache
        let warm = {
            let core = eng.into_core();
            assert!(core.warm_entries() > 0, "into_core keeps warm entries");
            core
        };
        let mut a = warm.fork();
        let mut b = warm.fork();
        // Forks start warm: the very first run hits the shared entries.
        a.run(&prog).unwrap();
        assert!(a.stats.incr_hits > 0, "fork starts from the warm cache");
        // Fault plans are per-fork: arming one never fires in the other.
        a.fault.arm(
            crate::fault::site::EVAL_RULE,
            Trigger::Always,
            Fault::Panic("fork a only".into()),
            7,
        );
        a.clear_cache(); // force evaluation so the armed fault can fire
        a.run(&prog).unwrap();
        assert!(a.stats.degraded(), "fork a degrades");
        b.run(&prog).unwrap();
        assert!(!b.stats.degraded(), "fork b never sees a's fault plan");
    }

    #[test]
    fn core_publish_rejects_diverged_forks() {
        let (eng, _, _) = example_engine();
        let core = eng.into_core();
        let mut clean = core.fork();
        let prog = parse_program("q(x) :- housePages(x).").unwrap();
        clean.run(&prog).unwrap();
        assert!(core.publish(&clean), "same-epoch fork publishes");
        let entries = core.warm_entries();
        assert!(entries > 0);
        let mut diverged = core.fork();
        diverged.procs_mut(); // epoch bump: the fork no longer matches
        assert!(!core.publish(&diverged), "diverged fork is refused");
        assert_eq!(core.warm_entries(), entries);
    }

    #[test]
    fn memo_lookup_fault_degrades_that_rule() {
        let (mut eng, houses, _) = example_engine();
        let prog = parse_program("q(x) :- housePages(x).").unwrap();
        let exact = eng.run(&prog).unwrap();
        assert_eq!(exact.len(), houses.len());
        eng.fault.arm(
            crate::fault::site::MEMO_LOOKUP,
            Trigger::Nth(0),
            Fault::Panic("cache corrupted".into()),
            7,
        );
        let degraded = eng.run(&prog).unwrap();
        assert!(eng.stats.degraded_by(DegradeCause::RulePanic));
        assert_eq!(
            eng.stats.degradations[0].site.as_deref(),
            Some(crate::fault::site::MEMO_LOOKUP)
        );
        assert!(!degraded.is_empty(), "widened stand-in keeps a result");
        // The fault fired exactly once: the next run is exact again.
        let after = eng.run(&prog).unwrap();
        assert!(!eng.stats.degraded());
        assert_eq!(after.tuples(), exact.tuples());
    }

    #[test]
    fn shared_var_unifies() {
        let store = Arc::new(DocumentStore::new());
        let mut eng = Engine::new(store);
        eng.add_table(
            "r1",
            CompactTable::from_exact_rows(
                vec!["a".into()],
                vec![vec![Value::Num(1.0)], vec![Value::Num(2.0)]],
            ),
        );
        eng.add_table(
            "r2",
            CompactTable::from_exact_rows(
                vec!["a".into()],
                vec![vec![Value::Num(2.0)], vec![Value::Num(3.0)]],
            ),
        );
        let prog = parse_program("q(x) :- r1(x), r2(x).").unwrap();
        let out = eng.run(&prog).unwrap();
        assert_eq!(out.len(), 1);
    }
}
