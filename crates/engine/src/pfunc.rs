//! P-predicates and p-functions (§2.1): procedural escape hatches that an
//! Alog program can call — similarity joins, cleanup procedures (§2.2.4),
//! or any developer-registered Rust closure.

use crate::similarity::approx_match;
use iflex_ctable::Value;
use iflex_text::DocumentStore;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Boolean p-function: all arguments are inputs, result is a filter.
pub type FilterFn = Arc<dyn Fn(&DocumentStore, &[Value]) -> bool + Send + Sync>;

/// Generating p-predicate: takes the bound input values, produces zero or
/// more output tuples (the values of the *output* arguments only).
pub type GenerateFn = Arc<dyn Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> + Send + Sync>;

/// A registered procedure.
#[derive(Clone)]
pub enum Procedure {
    /// `approxMatch(#h, #s)`-style boolean function.
    Filter(FilterFn),
    /// `extractLastAuthor(#list, author)`-style generator with the given
    /// number of output columns.
    Generator {
        /// Number of output columns.
        out_arity: usize,
        /// The procedure.
        f: GenerateFn,
    },
}

/// Name → procedure registry.
#[derive(Clone, Default)]
pub struct ProcRegistry {
    procs: BTreeMap<String, Procedure>,
}

impl ProcRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Registers a boolean p-function.
    pub fn register_filter(
        &mut self,
        name: &str,
        f: impl Fn(&DocumentStore, &[Value]) -> bool + Send + Sync + 'static,
    ) {
        self.procs
            .insert(name.to_string(), Procedure::Filter(Arc::new(f)));
    }

    /// Registers a generating p-predicate (e.g. a cleanup procedure).
    pub fn register_generator(
        &mut self,
        name: &str,
        out_arity: usize,
        f: impl Fn(&DocumentStore, &[Value]) -> Vec<Vec<Value>> + Send + Sync + 'static,
    ) {
        self.procs.insert(
            name.to_string(),
            Procedure::Generator {
                out_arity,
                f: Arc::new(f),
            },
        );
    }

    /// Looks up a procedure.
    pub fn get(&self, name: &str) -> Option<&Procedure> {
        self.procs.get(name)
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.procs.contains_key(name)
    }

    /// All registered names (for `ValidateEnv`).
    pub fn names(&self) -> Vec<&str> {
        self.procs.keys().map(String::as_str).collect()
    }
}

impl std::fmt::Debug for ProcRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcRegistry")
            .field("procs", &self.procs.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// The built-in procedures every engine starts with: `approxMatch` and
/// `similar` (token-containment similarity on the values' text).
pub fn builtin_procs() -> ProcRegistry {
    let mut r = ProcRegistry::empty();
    let sim = |store: &DocumentStore, args: &[Value]| -> bool {
        match args {
            [a, b] => approx_match(&a.as_text(store), &b.as_text(store)),
            _ => false,
        }
    };
    r.register_filter("approxMatch", sim);
    r.register_filter("similar", sim);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_similar_works_on_spans_and_strings() {
        let r = builtin_procs();
        let mut store = DocumentStore::new();
        let d = store.add_plain("Basktall HS");
        let span = store.doc(d).full_span();
        let Procedure::Filter(f) = r.get("similar").unwrap() else {
            panic!("similar must be a filter");
        };
        assert!(f(
            &store,
            &[Value::Span(span), Value::Str("Basktall".into())]
        ));
        assert!(!f(
            &store,
            &[Value::Str("Vanhise".into()), Value::Str("Basktall".into())]
        ));
        assert!(!f(&store, &[Value::Str("x".into())])); // wrong arity
    }

    #[test]
    fn generator_registration() {
        let mut r = ProcRegistry::empty();
        r.register_generator("dup", 1, |_, args| {
            vec![vec![args[0].clone()], vec![args[0].clone()]]
        });
        let Procedure::Generator { out_arity, f } = r.get("dup").unwrap() else {
            panic!();
        };
        assert_eq!(*out_arity, 1);
        let store = DocumentStore::new();
        assert_eq!(f(&store, &[Value::Num(3.0)]).len(), 2);
        assert!(r.contains("dup"));
        assert_eq!(r.names(), vec!["dup"]);
    }
}
