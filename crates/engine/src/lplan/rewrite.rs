//! The cost-driven rewrite passes. Every rewrite here is byte-exact by
//! construction (see the module docs in [`super`]): pushdown moves whole
//! same-side steps across a join, reordering only permutes steps with
//! disjoint column sets, and join flips are compensated at execution
//! time by order-restoring index sorts.

use super::analyze::{self, SelModel};
use super::node::{peel, LNode};
use super::{OptCtx, OptReport};
use crate::plan::FusedOp;

/// Pass 1: sink single-side selections below cross joins (recursively,
/// so a step can cross several nested joins). Steps whose columns span
/// both sides — or that read no columns at all — stay put.
pub fn pushdown(n: LNode, ctx: &OptCtx<'_>, report: &mut OptReport) -> Option<LNode> {
    Some(match n {
        LNode::Select { input, op } => {
            let input = pushdown(*input, ctx, report)?;
            sink(op, input, ctx, report)?
        }
        LNode::FromExtract { input, in_col } => LNode::FromExtract {
            input: Box::new(pushdown(*input, ctx, report)?),
            in_col,
        },
        LNode::GenerateProc {
            input,
            name,
            in_cols,
            out_arity,
        } => LNode::GenerateProc {
            input: Box::new(pushdown(*input, ctx, report)?),
            name,
            in_cols,
            out_arity,
        },
        LNode::Join {
            left,
            right,
            outer_right,
        } => LNode::Join {
            left: Box::new(pushdown(*left, ctx, report)?),
            right: Box::new(pushdown(*right, ctx, report)?),
            outer_right,
        },
        LNode::Project { input, cols, names } => LNode::Project {
            input: Box::new(pushdown(*input, ctx, report)?),
            cols,
            names,
        },
        LNode::Annotate {
            input,
            existence,
            annotated,
        } => LNode::Annotate {
            input: Box::new(pushdown(*input, ctx, report)?),
            existence,
            annotated,
        },
        leaf @ LNode::Leaf { .. } => leaf,
    })
}

/// Pushes one selection step as deep as it can go into `input`. On the
/// way down it may commute past other selections whose column sets are
/// disjoint (independent drops over disjoint cells — byte-exact), which
/// is what lets a late σ reach a join buried under the branch-merging
/// comparison that forced the join in the first place.
fn sink(op: FusedOp, input: LNode, ctx: &OptCtx<'_>, report: &mut OptReport) -> Option<LNode> {
    match input {
        LNode::Select {
            input: inner_input,
            op: inner_op,
        } => {
            let cols = op.cols();
            let inner_cols = inner_op.cols();
            let disjoint = !cols.is_empty() && !cols.iter().any(|c| inner_cols.contains(c));
            if disjoint && sinks_into_join(&op, &inner_input, ctx) {
                let sunk = sink(op, *inner_input, ctx, report)?;
                Some(LNode::Select {
                    input: Box::new(sunk),
                    op: inner_op,
                })
            } else {
                Some(LNode::Select {
                    input: Box::new(LNode::Select {
                        input: inner_input,
                        op: inner_op,
                    }),
                    op,
                })
            }
        }
        LNode::Join {
            left,
            right,
            outer_right,
        } => {
            let cols = op.cols();
            let la = analyze::arity(&left, ctx)?;
            if !cols.is_empty() && cols.iter().all(|&c| c < la) {
                report.pushdowns += 1;
                let left = sink(op, *left, ctx, report)?;
                Some(LNode::Join {
                    left: Box::new(left),
                    right,
                    outer_right,
                })
            } else if !cols.is_empty() && cols.iter().all(|&c| c >= la) {
                report.pushdowns += 1;
                let right = sink(shift_down(op, la), *right, ctx, report)?;
                Some(LNode::Join {
                    left,
                    right: Box::new(right),
                    outer_right,
                })
            } else {
                Some(LNode::Select {
                    input: Box::new(LNode::Join {
                        left,
                        right,
                        outer_right,
                    }),
                    op,
                })
            }
        }
        other => Some(LNode::Select {
            input: Box::new(other),
            op,
        }),
    }
}

/// Would `op` actually cross a join if sunk through the selection chain
/// below? Commuting past disjoint selections is only done when it ends
/// at a sinkable join — otherwise the step stays put and the
/// selectivity reorderer decides the chain's final order (with
/// attribution under the right counter).
fn sinks_into_join(op: &FusedOp, node: &LNode, ctx: &OptCtx<'_>) -> bool {
    let cols = op.cols();
    if cols.is_empty() {
        return false;
    }
    match node {
        LNode::Select { input, op: inner } => {
            let inner_cols = inner.cols();
            !cols.iter().any(|c| inner_cols.contains(c)) && sinks_into_join(op, input, ctx)
        }
        LNode::Join { left, .. } => match analyze::arity(left, ctx) {
            Some(la) => cols.iter().all(|&c| c < la) || cols.iter().all(|&c| c >= la),
            None => false,
        },
        _ => false,
    }
}

/// Rebases a right-side step's columns onto the right input's schema.
fn shift_down(op: FusedOp, la: usize) -> FusedOp {
    use crate::plan::Operand;
    match op {
        FusedOp::Constraint {
            col,
            constraint,
            priors,
        } => FusedOp::Constraint {
            col: col - la,
            constraint,
            priors,
        },
        FusedOp::Compare {
            left,
            op,
            right,
            offset,
        } => {
            let shift = |o: Operand| match o {
                Operand::Col(c) => Operand::Col(c - la),
                c => c,
            };
            FusedOp::Compare {
                left: shift(left),
                op,
                right: shift(right),
                offset,
            }
        }
        FusedOp::VarUnify { col_a, col_b } => FusedOp::VarUnify {
            col_a: col_a - la,
            col_b: col_b - la,
        },
        FusedOp::FilterProc { name, cols } => FusedOp::FilterProc {
            name,
            cols: cols.into_iter().map(|c| c - la).collect(),
        },
    }
}

/// Pass 2: reschedule each maximal selection chain cheapest-and-most-
/// selective first, keeping the source order of any two steps whose
/// column sets overlap (their relative order is semantically binding —
/// §4.2 prior re-checks, cell refinement before candidate enumeration).
pub fn reorder(n: LNode, model: &SelModel<'_>, report: &mut OptReport) -> LNode {
    match n {
        LNode::Select { .. } => {
            let (ops, base) = peel(n);
            let base = reorder(base, model, report);
            let order = schedule(&ops, model);
            report.reorders += order
                .iter()
                .enumerate()
                .filter(|&(pos, &i)| pos != i)
                .count() as u32;
            let mut out = base;
            let mut ops: Vec<Option<FusedOp>> = ops.into_iter().map(Some).collect();
            for i in order {
                let op = ops[i].take().expect("schedule emits each step once");
                out = LNode::Select {
                    input: Box::new(out),
                    op,
                };
            }
            out
        }
        LNode::FromExtract { input, in_col } => LNode::FromExtract {
            input: Box::new(reorder(*input, model, report)),
            in_col,
        },
        LNode::GenerateProc {
            input,
            name,
            in_cols,
            out_arity,
        } => LNode::GenerateProc {
            input: Box::new(reorder(*input, model, report)),
            name,
            in_cols,
            out_arity,
        },
        LNode::Join {
            left,
            right,
            outer_right,
        } => LNode::Join {
            left: Box::new(reorder(*left, model, report)),
            right: Box::new(reorder(*right, model, report)),
            outer_right,
        },
        LNode::Project { input, cols, names } => LNode::Project {
            input: Box::new(reorder(*input, model, report)),
            cols,
            names,
        },
        LNode::Annotate {
            input,
            existence,
            annotated,
        } => LNode::Annotate {
            input: Box::new(reorder(*input, model, report)),
            existence,
            annotated,
        },
        leaf @ LNode::Leaf { .. } => leaf,
    }
}

/// Greedy list scheduling over the chain's dependency partial order:
/// repeatedly emit the ready step with the best (lowest) rank; ties keep
/// the earliest source position, so equal-rank chains are untouched and
/// the result is deterministic.
fn schedule(ops: &[FusedOp], model: &SelModel<'_>) -> Vec<usize> {
    let n = ops.len();
    let conflicts = |a: &FusedOp, b: &FusedOp| -> bool {
        let ca = a.cols();
        b.cols().iter().any(|c| ca.contains(c))
    };
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if emitted[i] {
                continue;
            }
            let ready = (0..i).all(|j| emitted[j] || !conflicts(&ops[i], &ops[j]));
            if !ready {
                continue;
            }
            let r = model.rank(&ops[i]);
            if best.is_none_or(|(br, _)| r < br - 1e-12) {
                best = Some((r, i));
            }
        }
        let (_, i) = best.expect("some unemitted step is always ready");
        emitted[i] = true;
        order.push(i);
    }
    order
}

/// Is this step the interpreter's specialized token-prefilter similarity
/// join: a `similar`/`approxMatch` filter with exactly one column on
/// each side of a join with left arity `la`?
pub(super) fn straddling_similar(op: &FusedOp, la: usize) -> bool {
    match op {
        FusedOp::FilterProc { name, cols } => {
            (name == "similar" || name == "approxMatch")
                && matches!(cols.as_slice(), [a, b] if *a < la && *b >= la)
        }
        _ => false,
    }
}

/// Pass 3: orient each cross join so its larger input becomes the outer
/// (sharded) loop — better parallel granularity and a cache-resident
/// inner side. Joins feeding the specialized similarity filter keep the
/// compiler's orientation (that path shards the left side by design).
pub fn orient_joins(
    n: LNode,
    ctx: &OptCtx<'_>,
    model: &SelModel<'_>,
    report: &mut OptReport,
) -> Option<LNode> {
    Some(match n {
        LNode::Select { input, op } => {
            // Detect (and protect) the similarity-join specialization.
            if let LNode::Join {
                left,
                right,
                outer_right,
            } = *input
            {
                let la = analyze::arity(&left, ctx)?;
                if straddling_similar(&op, la) {
                    let left = orient_joins(*left, ctx, model, report)?;
                    let right = orient_joins(*right, ctx, model, report)?;
                    return Some(LNode::Select {
                        input: Box::new(LNode::Join {
                            left: Box::new(left),
                            right: Box::new(right),
                            outer_right,
                        }),
                        op,
                    });
                }
                let join = orient_joins(
                    LNode::Join {
                        left,
                        right,
                        outer_right,
                    },
                    ctx,
                    model,
                    report,
                )?;
                LNode::Select {
                    input: Box::new(join),
                    op,
                }
            } else {
                LNode::Select {
                    input: Box::new(orient_joins(*input, ctx, model, report)?),
                    op,
                }
            }
        }
        LNode::Join {
            left,
            right,
            outer_right,
        } => {
            let lrows = analyze::est_rows(&left, ctx, model)?;
            let rrows = analyze::est_rows(&right, ctx, model)?;
            let left = Box::new(orient_joins(*left, ctx, model, report)?);
            let right = Box::new(orient_joins(*right, ctx, model, report)?);
            // Hysteresis: only flip on a clear margin, so estimate noise
            // near parity doesn't churn plans between runs.
            let flip = rrows > lrows * 2.0;
            if flip && !outer_right {
                report.join_flips += 1;
            }
            LNode::Join {
                left,
                right,
                outer_right: outer_right || flip,
            }
        }
        LNode::FromExtract { input, in_col } => LNode::FromExtract {
            input: Box::new(orient_joins(*input, ctx, model, report)?),
            in_col,
        },
        LNode::GenerateProc {
            input,
            name,
            in_cols,
            out_arity,
        } => LNode::GenerateProc {
            input: Box::new(orient_joins(*input, ctx, model, report)?),
            name,
            in_cols,
            out_arity,
        },
        LNode::Project { input, cols, names } => LNode::Project {
            input: Box::new(orient_joins(*input, ctx, model, report)?),
            cols,
            names,
        },
        LNode::Annotate {
            input,
            existence,
            annotated,
        } => LNode::Annotate {
            input: Box::new(orient_joins(*input, ctx, model, report)?),
            existence,
            annotated,
        },
        leaf @ LNode::Leaf { .. } => leaf,
    })
}
