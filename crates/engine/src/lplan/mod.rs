//! Logical-plan optimizer (DESIGN.md §11).
//!
//! Sits between the rule compiler ([`crate::plan::compile_rule`]) and the
//! interpreter ([`crate::exec`]): the compiled [`Plan`] is rebuilt as a
//! [`LNode`] tree, analyzed for arity / cardinality / selectivity, run
//! through cost-driven rewrite passes, and lowered back to a physical
//! [`Plan`] with adjacent σ/constraint/π operators fused into single
//! batch passes ([`crate::plan::Plan::Fused`]).
//!
//! The passes, in order:
//!
//! 1. **σ pushdown** — selections touching only one side of a cross join
//!    sink below it (and keep sinking through nested joins), so per-side
//!    filtering happens before the product is formed.
//! 2. **selectivity reordering** — runs of adjacent selections are
//!    rescheduled cheapest-and-most-selective first, *only* across steps
//!    with disjoint column sets (steps sharing a column keep their
//!    source order, which the §4.2 prior-recheck worklist depends on).
//!    Constraint selectivities are seeded from the per-feature
//!    [`FeatStats`] the feature memo collects.
//! 3. **join orientation** — the larger input becomes the sharded outer
//!    loop of a fused join; output order is restored by index-sorting,
//!    so results are unchanged.
//! 4. **fusion** — each remaining run of selections (plus a trailing
//!    projection) becomes one [`Plan::Fused`] pass; a fused pass over a
//!    cross join streams the product pairwise instead of materializing
//!    it.
//!
//! Every pass preserves results **byte-for-byte**, not just up to
//! worlds-equivalence: moves are restricted to transformations that
//! provably commute at the tuple/cell level (disjoint columns, whole
//! same-side chains, order-compensated join flips). This is what lets
//! `Limits::use_optimizer` be a pure ablation knob, and why incremental
//! cache fingerprints — which hash the *pre-optimization* unfolded rule
//! (see [`crate::plan::rule_fingerprint`]) — remain valid for optimized
//! and unoptimized executions alike.

mod analyze;
mod lower;
mod node;
mod rewrite;

pub use analyze::SelModel;
pub use node::LNode;

use crate::memo::FeatStats;
use crate::plan::Plan;
use std::collections::{BTreeMap, HashMap};

/// What the optimizer knows about the world at rewrite time.
pub struct OptCtx<'a> {
    /// Relation name → (arity, current row count). Covers every
    /// extensional table and every intensional relation computed earlier
    /// in evaluation order; row counts are *actual* sizes, so the
    /// cardinality model is exact at the leaves.
    pub relations: &'a BTreeMap<String, (usize, usize)>,
    /// Per-feature call statistics snapshotted from the feature memo
    /// ([`crate::memo::FeatureMemo::feature_stats`]); seeds constraint
    /// selectivities.
    pub stats: &'a HashMap<String, FeatStats>,
}

/// What the optimizer did to one plan, for `engine.opt.*` counters and
/// the EXPLAIN rendering.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptReport {
    /// Selections sunk below a join (one count per join crossed).
    pub pushdowns: u32,
    /// Selection steps moved by the selectivity reordering pass.
    pub reorders: u32,
    /// Joins whose outer loop was flipped to the larger input.
    pub join_flips: u32,
    /// `Fused` nodes emitted.
    pub fused_nodes: u32,
    /// Selection steps folded into `Fused` nodes.
    pub fused_steps: u32,
    /// Estimated rows entering the rule (product of leaf cardinalities).
    pub est_in_rows: f64,
    /// Estimated rows leaving the rule (after modeled selectivities).
    pub est_out_rows: f64,
}

impl OptReport {
    /// Estimated whole-rule selectivity in `[0, 1]`.
    pub fn est_selectivity(&self) -> f64 {
        if self.est_in_rows > 0.0 {
            (self.est_out_rows / self.est_in_rows).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// One-line summary for EXPLAIN output.
    pub fn summary(&self) -> String {
        format!(
            "pushdowns={} reorders={} join_flips={} fused={}({} steps) est_sel={:.4}",
            self.pushdowns,
            self.reorders,
            self.join_flips,
            self.fused_nodes,
            self.fused_steps,
            self.est_selectivity()
        )
    }
}

/// Optimizes one compiled plan. Returns `None` when the plan contains a
/// shape the optimizer does not model (already-fused nodes, relations
/// missing from `ctx`) — the caller then runs the original plan, which
/// is always correct.
pub fn optimize(plan: &Plan, ctx: &OptCtx<'_>) -> Option<(Plan, OptReport)> {
    let mut report = OptReport::default();
    let node = node::build(plan)?;
    report.est_in_rows = analyze::input_rows(&node, ctx)?;
    let model = SelModel::new(ctx.stats);
    let node = rewrite::pushdown(node, ctx, &mut report)?;
    let node = rewrite::reorder(node, &model, &mut report);
    let node = rewrite::orient_joins(node, ctx, &model, &mut report)?;
    report.est_out_rows = analyze::est_rows(&node, ctx, &model)?;
    let plan = lower::lower(node, ctx, &mut report)?;
    Some((plan, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile_rule, CompileEnv, FusedOp};
    use iflex_alog::parse_rule;

    fn ctx_maps() -> (BTreeMap<String, (usize, usize)>, HashMap<String, FeatStats>) {
        let mut rel = BTreeMap::new();
        rel.insert("small".to_string(), (1, 10));
        rel.insert("big".to_string(), (1, 1000));
        rel.insert("r2".to_string(), (2, 50));
        (rel, HashMap::new())
    }

    fn compile(src: &str) -> Plan {
        let mut ext = BTreeMap::new();
        ext.insert("small".to_string(), 1);
        ext.insert("big".to_string(), 1);
        ext.insert("r2".to_string(), 2);
        let int = BTreeMap::new();
        let mut procs = BTreeMap::new();
        procs.insert("similar".to_string(), (true, 0));
        let env = CompileEnv {
            extensional: &ext,
            intensional: &int,
            procedures: &procs,
        };
        compile_rule(&parse_rule(src).unwrap(), &env).unwrap()
    }

    fn optimize_src(src: &str) -> (Plan, OptReport) {
        let (rel, stats) = ctx_maps();
        let ctx = OptCtx {
            relations: &rel,
            stats: &stats,
        };
        optimize(&compile(src), &ctx).expect("optimizable")
    }

    #[test]
    fn pushdown_sinks_post_join_selection() {
        // numeric(b) appears after `x < a` merges the branches, so the
        // compiler leaves it above the join; its column is disjoint from
        // the comparison's, so the optimizer must commute it past the
        // comparison and sink it into the right branch.
        let (plan, report) =
            optimize_src("q(x, a, b) :- small(x), r2(a, b), x < a, numeric(b) = yes.");
        assert!(report.pushdowns >= 1, "report: {report:?}");
        let explained = plan.explain();
        let join = explained.find("CrossJoin").unwrap();
        let numeric = explained.find("numeric").unwrap();
        assert!(numeric > join, "σ must print below the join:\n{explained}");
    }

    #[test]
    fn pushdown_keeps_shared_column_order() {
        // numeric(a) shares column `a` with the straddling similar()
        // filter: sinking it past the filter would reorder two steps on a
        // shared column — forbidden (candidate enumeration over a refined
        // vs. unrefined cell differs). It must stay above.
        let (plan, report) = optimize_src(
            "q(a, b) :- small(x), from(#x, a), big(y), from(#y, b), \
             similar(#a, #b), numeric(a) = yes.",
        );
        assert_eq!(report.pushdowns, 0, "report: {report:?}");
        let explained = plan.explain();
        let sim = explained.find("similar").unwrap();
        let numeric = explained.find("numeric").unwrap();
        assert!(numeric < sim, "σ must stay above the filter:\n{explained}");
    }

    #[test]
    fn similar_filter_specialization_is_preserved() {
        let (plan, _) = optimize_src(
            "q(a, b) :- small(x), from(#x, a), big(y), from(#y, b), similar(#a, #b).",
        );
        let explained = plan.explain();
        // The straddling similar filter must stay a standalone FilterProc
        // directly above the CrossJoin so exec's token-prefilter join
        // specialization still applies.
        assert!(
            explained.contains("Filter[similar"),
            "similar specialization lost:\n{explained}"
        );
    }

    #[test]
    fn join_flips_to_larger_outer() {
        let (plan, report) = optimize_src("q(x, y) :- small(x), big(y), x = \"a\".");
        // left branch small(10) + σ, right big(1000): outer should flip.
        assert!(report.join_flips >= 1, "report: {report:?}");
        assert!(plan.explain().contains("outer=right"), "{}", plan.explain());
    }

    #[test]
    fn adjacent_selections_fuse_with_projection() {
        let (plan, report) = optimize_src(
            "q(a) :- small(x), from(#x, a), numeric(a) = yes, min-value(a) = 10.",
        );
        assert!(report.fused_nodes >= 1, "report: {report:?}");
        assert!(report.fused_steps >= 2, "report: {report:?}");
        let explained = plan.explain();
        assert!(explained.contains("Fused["), "{explained}");
        assert!(explained.contains("π["), "{explained}");
    }

    #[test]
    fn single_selection_stays_standalone() {
        // One σ, no trailing π on the branch below FromExtract: nothing
        // worth fusing there.
        let (plan, _) = optimize_src("q(x) :- small(x).");
        assert!(!plan.explain().contains("Fused["), "{}", plan.explain());
    }

    #[test]
    fn reorder_respects_same_column_chains() {
        // Two constraints on the same variable must keep source order no
        // matter what the stats say.
        let mut stats = HashMap::new();
        stats.insert(
            "numeric".to_string(),
            FeatStats {
                verify_calls: 100,
                verify_true: 99,
                refine_calls: 0,
                refine_out: 0,
            },
        );
        stats.insert(
            "min-value".to_string(),
            FeatStats {
                verify_calls: 100,
                verify_true: 1,
                refine_calls: 0,
                refine_out: 0,
            },
        );
        let (rel, _) = ctx_maps();
        let ctx = OptCtx {
            relations: &rel,
            stats: &stats,
        };
        let plan = compile(
            "q(a) :- small(x), from(#x, a), numeric(a) = yes, min-value(a) = 10.",
        );
        let (opt, report) = optimize(&plan, &ctx).unwrap();
        assert_eq!(report.reorders, 0, "same-column chain must not move");
        if let Plan::Fused { ops, .. } = find_fused(&opt).expect("fused node") {
            let feats: Vec<&str> = ops
                .iter()
                .filter_map(|o| match o {
                    FusedOp::Constraint { constraint, .. } => Some(constraint.feature.as_str()),
                    _ => None,
                })
                .collect();
            assert_eq!(feats, ["numeric", "min-value"], "source order kept");
        }
    }

    #[test]
    fn reorder_moves_selective_disjoint_op_first() {
        // A highly selective cheap comparison on column y should run
        // before a barely-selective constraint on column a.
        let mut stats = HashMap::new();
        stats.insert(
            "numeric".to_string(),
            FeatStats {
                verify_calls: 100,
                verify_true: 99,
                refine_calls: 0,
                refine_out: 0,
            },
        );
        let (rel, _) = ctx_maps();
        let ctx = OptCtx {
            relations: &rel,
            stats: &stats,
        };
        let plan = compile("q(a, y) :- r2(x, y), from(#x, a), numeric(a) = yes, y = 5.");
        let (opt, report) = optimize(&plan, &ctx).unwrap();
        assert!(report.reorders >= 1, "report: {report:?}");
        if let Plan::Fused { ops, .. } = find_fused(&opt).expect("fused node") {
            assert!(
                matches!(ops[0], FusedOp::Compare { .. }),
                "comparison should be scheduled first: {ops:?}"
            );
        }
    }

    #[test]
    fn unknown_relation_aborts_optimization() {
        let (_, stats) = ctx_maps();
        let rel = BTreeMap::new(); // nothing known
        let ctx = OptCtx {
            relations: &rel,
            stats: &stats,
        };
        let plan = compile("q(x) :- small(x), x = 5.");
        assert!(optimize(&plan, &ctx).is_none());
    }

    fn find_fused(p: &Plan) -> Option<&Plan> {
        match p {
            Plan::Fused { .. } => Some(p),
            Plan::Annotate { input, .. }
            | Plan::Project { input, .. }
            | Plan::FromExtract { input, .. }
            | Plan::Constraint { input, .. }
            | Plan::Compare { input, .. }
            | Plan::VarUnify { input, .. }
            | Plan::FilterProc { input, .. }
            | Plan::GenerateProc { input, .. } => find_fused(input),
            Plan::CrossJoin { left, right } => find_fused(left).or_else(|| find_fused(right)),
            Plan::ScanExt { .. } | Plan::ScanRel { .. } => None,
        }
    }
}
