//! Plan analysis: arity, cardinality, and selectivity estimation.
//!
//! Leaf cardinalities are exact (the engine hands the optimizer actual
//! table sizes); everything above is modeled. Selectivities come from
//! two sources: measured per-feature pass rates from the feature memo
//! ([`FeatStats`], collected on every cache-miss feature invocation) and
//! closed-form defaults for operators with no measured signal. The
//! estimates only steer *which* byte-exact rewrite fires — a bad
//! estimate can cost speed, never correctness.

use super::node::LNode;
use super::OptCtx;
use crate::memo::FeatStats;
use crate::plan::{FusedOp, Operand, Plan};
use iflex_alog::CmpOp;
use std::collections::HashMap;

/// Arity (column count) of a node's output schema. `None` when a scanned
/// relation is unknown to the context.
pub fn arity(n: &LNode, ctx: &OptCtx<'_>) -> Option<usize> {
    Some(match n {
        LNode::Leaf { plan } => match plan {
            Plan::ScanExt { name } | Plan::ScanRel { name } => ctx.relations.get(name)?.0,
            _ => return None,
        },
        LNode::FromExtract { input, .. } => arity(input, ctx)? + 1,
        LNode::GenerateProc {
            input, out_arity, ..
        } => arity(input, ctx)? + out_arity,
        LNode::Select { input, .. } => arity(input, ctx)?,
        LNode::Join { left, right, .. } => arity(left, ctx)? + arity(right, ctx)?,
        LNode::Project { cols, .. } => cols.len(),
        LNode::Annotate { input, .. } => arity(input, ctx)?,
    })
}

/// Product of leaf cardinalities: the rows the rule would touch with no
/// selection at all (denominator of the whole-rule selectivity figure).
pub fn input_rows(n: &LNode, ctx: &OptCtx<'_>) -> Option<f64> {
    Some(match n {
        LNode::Leaf { plan } => match plan {
            Plan::ScanExt { name } | Plan::ScanRel { name } => ctx.relations.get(name)?.1 as f64,
            _ => return None,
        },
        LNode::FromExtract { input, .. }
        | LNode::GenerateProc { input, .. }
        | LNode::Select { input, .. }
        | LNode::Project { input, .. }
        | LNode::Annotate { input, .. } => input_rows(input, ctx)?,
        LNode::Join { left, right, .. } => input_rows(left, ctx)? * input_rows(right, ctx)?,
    })
}

/// Estimated output cardinality under the selectivity model.
pub fn est_rows(n: &LNode, ctx: &OptCtx<'_>, model: &SelModel<'_>) -> Option<f64> {
    Some(match n {
        LNode::Leaf { plan } => match plan {
            Plan::ScanExt { name } | Plan::ScanRel { name } => ctx.relations.get(name)?.1 as f64,
            _ => return None,
        },
        LNode::FromExtract { input, .. } | LNode::GenerateProc { input, .. } => {
            est_rows(input, ctx, model)?
        }
        LNode::Select { input, op } => est_rows(input, ctx, model)? * model.selectivity(op),
        LNode::Join { left, right, .. } => {
            est_rows(left, ctx, model)? * est_rows(right, ctx, model)?
        }
        LNode::Project { input, .. } | LNode::Annotate { input, .. } => {
            est_rows(input, ctx, model)?
        }
    })
}

/// The selectivity / cost model behind the reordering and orientation
/// passes.
pub struct SelModel<'a> {
    stats: &'a HashMap<String, FeatStats>,
}

impl<'a> SelModel<'a> {
    /// A model over one memo-stats snapshot.
    pub fn new(stats: &'a HashMap<String, FeatStats>) -> Self {
        SelModel { stats }
    }

    /// Estimated fraction of tuples the step lets through.
    pub fn selectivity(&self, op: &FusedOp) -> f64 {
        match op {
            FusedOp::Constraint { constraint, .. } => self
                .stats
                .get(&constraint.feature)
                .and_then(FeatStats::pass_rate)
                // Constraints mostly shrink cells rather than drop whole
                // tuples; default near-neutral until measured.
                .unwrap_or(0.8),
            FusedOp::Compare { op, left, right, .. } => {
                let const_side = matches!(left, Operand::Const(_))
                    || matches!(right, Operand::Const(_));
                match op {
                    // Superset semantics keep a pair unless it *must*
                    // fail, so equality against a constant is the most
                    // selective shape; column-column equality less so.
                    CmpOp::Eq => {
                        if const_side {
                            0.1
                        } else {
                            0.25
                        }
                    }
                    CmpOp::Ne => 0.9,
                    _ => 0.5,
                }
            }
            FusedOp::VarUnify { .. } => 0.25,
            FusedOp::FilterProc { .. } => 0.5,
        }
    }

    /// Relative per-tuple cost of the step.
    pub fn cost(&self, op: &FusedOp) -> f64 {
        match op {
            // Refinement worklists re-check the whole prior chain.
            FusedOp::Constraint { priors, .. } => 8.0 + 2.0 * priors.len() as f64,
            FusedOp::FilterProc { .. } => 4.0,
            FusedOp::Compare { .. } | FusedOp::VarUnify { .. } => 1.0,
        }
    }

    /// Scheduling rank: classic `(selectivity − 1) / cost`, most
    /// negative first — cheap, highly selective steps run earliest.
    pub fn rank(&self, op: &FusedOp) -> f64 {
        (self.selectivity(op) - 1.0) / self.cost(op)
    }
}
