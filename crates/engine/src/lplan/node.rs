//! The logical plan-node tree: a rewrite-friendly mirror of
//! [`Plan`](crate::plan::Plan) in which every selection operator is one
//! uniform [`Select`](LNode::Select) node carrying its per-tuple body as
//! a [`FusedOp`], so the passes can peel, sink, and reschedule selection
//! chains without matching four node shapes each time.

use crate::plan::{FusedOp, Plan};

/// One logical plan node. Built 1:1 from a compiled [`Plan`] by
/// [`build`]; lowered back (with fusion) by [`super::lower`].
#[derive(Debug, Clone)]
pub enum LNode {
    /// A scan leaf — keeps the original `ScanExt` / `ScanRel` node.
    Leaf {
        /// The scan.
        plan: Plan,
    },
    /// `from(#x, y)` expansion; appends one column.
    FromExtract {
        /// Child node.
        input: Box<LNode>,
        /// Column holding the source spans.
        in_col: usize,
    },
    /// Generating p-predicate; appends `out_arity` columns.
    GenerateProc {
        /// Child node.
        input: Box<LNode>,
        /// Procedure name.
        name: String,
        /// Input-argument columns.
        in_cols: Vec<usize>,
        /// Number of appended output columns.
        out_arity: usize,
    },
    /// Any selection (σ, constraint, unification, filter).
    Select {
        /// Child node.
        input: Box<LNode>,
        /// The per-tuple selection body.
        op: FusedOp,
    },
    /// Cross join.
    Join {
        /// Left input.
        left: Box<LNode>,
        /// Right input.
        right: Box<LNode>,
        /// Orientation chosen by the join-ordering pass: iterate the
        /// right side as the outer loop (output order is compensated).
        outer_right: bool,
    },
    /// Projection.
    Project {
        /// Child node.
        input: Box<LNode>,
        /// Projected columns.
        cols: Vec<usize>,
        /// Output column names.
        names: Vec<String>,
    },
    /// ψ annotation.
    Annotate {
        /// Child node.
        input: Box<LNode>,
        /// Existence annotation flag.
        existence: bool,
        /// Attribute-annotated column indices.
        annotated: Vec<usize>,
    },
}

/// Rebuilds a compiled plan as a logical node tree. Returns `None` for
/// shapes the optimizer does not model (an already-`Fused` plan).
pub fn build(p: &Plan) -> Option<LNode> {
    Some(match p {
        Plan::ScanExt { .. } | Plan::ScanRel { .. } => LNode::Leaf { plan: p.clone() },
        Plan::FromExtract { input, in_col } => LNode::FromExtract {
            input: Box::new(build(input)?),
            in_col: *in_col,
        },
        Plan::Constraint {
            input,
            col,
            constraint,
            priors,
        } => LNode::Select {
            input: Box::new(build(input)?),
            op: FusedOp::Constraint {
                col: *col,
                constraint: constraint.clone(),
                priors: priors.clone(),
            },
        },
        Plan::Compare {
            input,
            left,
            op,
            right,
            offset,
        } => LNode::Select {
            input: Box::new(build(input)?),
            op: FusedOp::Compare {
                left: left.clone(),
                op: *op,
                right: right.clone(),
                offset: *offset,
            },
        },
        Plan::VarUnify { input, col_a, col_b } => LNode::Select {
            input: Box::new(build(input)?),
            op: FusedOp::VarUnify {
                col_a: *col_a,
                col_b: *col_b,
            },
        },
        Plan::FilterProc { input, name, cols } => LNode::Select {
            input: Box::new(build(input)?),
            op: FusedOp::FilterProc {
                name: name.clone(),
                cols: cols.clone(),
            },
        },
        Plan::GenerateProc {
            input,
            name,
            in_cols,
            out_arity,
        } => LNode::GenerateProc {
            input: Box::new(build(input)?),
            name: name.clone(),
            in_cols: in_cols.clone(),
            out_arity: *out_arity,
        },
        Plan::CrossJoin { left, right } => LNode::Join {
            left: Box::new(build(left)?),
            right: Box::new(build(right)?),
            outer_right: false,
        },
        Plan::Project { input, cols, names } => LNode::Project {
            input: Box::new(build(input)?),
            cols: cols.clone(),
            names: names.clone(),
        },
        Plan::Annotate {
            input,
            existence,
            annotated,
        } => LNode::Annotate {
            input: Box::new(build(input)?),
            existence: *existence,
            annotated: annotated.clone(),
        },
        Plan::Fused { .. } => return None,
    })
}

/// Peels the maximal selection chain off the top of `n`, returning the
/// chain's ops in **application order** (innermost first) and the base
/// node below the chain.
pub fn peel(mut n: LNode) -> (Vec<FusedOp>, LNode) {
    let mut ops = Vec::new();
    while let LNode::Select { input, op } = n {
        ops.push(op);
        n = *input;
    }
    ops.reverse();
    (ops, n)
}
