//! Pass 4 + lowering: turns the rewritten [`LNode`] tree back into a
//! physical [`Plan`], folding each run of adjacent selections (plus a
//! directly-above projection) into one [`Plan::Fused`] batch pass. A
//! fused pass over a cross join streams the product pairwise — the
//! interpreter never materializes the un-filtered product table.

use super::analyze;
use super::node::{peel, LNode};
use super::rewrite::straddling_similar;
use super::{OptCtx, OptReport};
use crate::plan::{FusedOp, Plan};

/// Lowers a logical node tree to a physical plan.
pub fn lower(n: LNode, ctx: &OptCtx<'_>, report: &mut OptReport) -> Option<Plan> {
    Some(match n {
        LNode::Leaf { plan } => plan,
        LNode::FromExtract { input, in_col } => Plan::FromExtract {
            input: Box::new(lower(*input, ctx, report)?),
            in_col,
        },
        LNode::GenerateProc {
            input,
            name,
            in_cols,
            out_arity,
        } => Plan::GenerateProc {
            input: Box::new(lower(*input, ctx, report)?),
            name,
            in_cols,
            out_arity,
        },
        LNode::Annotate {
            input,
            existence,
            annotated,
        } => Plan::Annotate {
            input: Box::new(lower(*input, ctx, report)?),
            existence,
            annotated,
        },
        LNode::Project { input, cols, names } => {
            let (ops, base) = peel(*input);
            lower_run(ops, base, Some((cols, names)), ctx, report)?
        }
        n @ LNode::Select { .. } => {
            let (ops, base) = peel(n);
            lower_run(ops, base, None, ctx, report)?
        }
        LNode::Join { left, right, .. } => Plan::CrossJoin {
            left: Box::new(lower(*left, ctx, report)?),
            right: Box::new(lower(*right, ctx, report)?),
        },
    })
}

/// Lowers one selection run (ops in application order) over `base`,
/// optionally capped by a projection.
fn lower_run(
    mut ops: Vec<FusedOp>,
    base: LNode,
    project: Option<(Vec<usize>, Vec<String>)>,
    ctx: &OptCtx<'_>,
    report: &mut OptReport,
) -> Option<Plan> {
    // Column references are resolved to `usize` indices at compile time
    // and carried through rewriting untouched; re-check them against the
    // base arity here, once, so the interpreter's per-run bodies (row and
    // columnar alike) index cells without a per-access name lookup —
    // `CompactTable::col_index`'s linear scan stays off every hot path.
    if let Some(arity) = analyze::arity(&base, ctx) {
        debug_assert!(
            fused_in_bounds(&ops, project.as_ref(), arity),
            "lowering produced an out-of-bounds column index (arity {arity})"
        );
    }
    // Lower the base, keeping track of whether the fused pass would sit
    // directly on a cross join (streaming mode).
    let (base_plan, join_input, outer_right) = match base {
        LNode::Join {
            left,
            right,
            outer_right,
        } => {
            let la = analyze::arity(&left, ctx)?;
            let cj = Plan::CrossJoin {
                left: Box::new(lower(*left, ctx, report)?),
                right: Box::new(lower(*right, ctx, report)?),
            };
            // Keep the interpreter's token-prefilter similarity join: the
            // straddling filter stays a standalone FilterProc directly
            // above the CrossJoin, and the rest of the run fuses above it.
            if ops.first().is_some_and(|op| straddling_similar(op, la)) {
                match ops.remove(0) {
                    FusedOp::FilterProc { name, cols } => (
                        Plan::FilterProc {
                            input: Box::new(cj),
                            name,
                            cols,
                        },
                        false,
                        false,
                    ),
                    _ => unreachable!("straddling_similar only matches FilterProc"),
                }
            } else {
                (cj, true, outer_right)
            }
        }
        other => (lower(other, ctx, report)?, false, false),
    };

    let weight = ops.len() + usize::from(project.is_some());
    if (join_input && weight >= 1) || weight >= 2 {
        report.fused_nodes += 1;
        report.fused_steps += ops.len() as u32;
        return Some(Plan::Fused {
            input: Box::new(base_plan),
            ops,
            project,
            outer_right,
        });
    }
    // Nothing worth fusing: re-emit standalone operators.
    let mut out = base_plan;
    for op in ops {
        out = standalone(op, out);
    }
    if let Some((cols, names)) = project {
        out = Plan::Project {
            input: Box::new(out),
            cols,
            names,
        };
    }
    Some(out)
}

/// True when every column index a selection run (and its projection)
/// references is inside the base arity. Lowering asserts this once per
/// run — the interpreter then indexes cells directly.
fn fused_in_bounds(
    ops: &[FusedOp],
    project: Option<&(Vec<usize>, Vec<String>)>,
    arity: usize,
) -> bool {
    ops.iter().all(|op| op.cols().iter().all(|&c| c < arity))
        && project.is_none_or(|(cols, _)| cols.iter().all(|&c| c < arity))
}

/// The standalone physical operator for one selection step (inverse of
/// [`super::node::build`]'s Select mapping).
fn standalone(op: FusedOp, input: Plan) -> Plan {
    let input = Box::new(input);
    match op {
        FusedOp::Constraint {
            col,
            constraint,
            priors,
        } => Plan::Constraint {
            input,
            col,
            constraint,
            priors,
        },
        FusedOp::Compare {
            left,
            op,
            right,
            offset,
        } => Plan::Compare {
            input,
            left,
            op,
            right,
            offset,
        },
        FusedOp::VarUnify { col_a, col_b } => Plan::VarUnify { input, col_a, col_b },
        FusedOp::FilterProc { name, cols } => Plan::FilterProc { input, name, cols },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Operand;
    use iflex_alog::CmpOp;
    use iflex_ctable::Value;

    fn cmp(l: usize, r: usize) -> FusedOp {
        FusedOp::Compare {
            left: Operand::Col(l),
            op: CmpOp::Eq,
            right: Operand::Col(r),
            offset: 0.0,
        }
    }

    #[test]
    fn bounds_check_accepts_resolved_indices() {
        let ops = vec![
            cmp(0, 2),
            FusedOp::VarUnify { col_a: 1, col_b: 2 },
            FusedOp::FilterProc {
                name: "p".into(),
                cols: vec![0, 1, 2],
            },
        ];
        let project = (vec![2, 0], vec!["a".into(), "b".into()]);
        assert!(fused_in_bounds(&ops, Some(&project), 3));
        // Constants reference no column and never fail the check.
        let const_only = vec![FusedOp::Compare {
            left: Operand::Const(Value::Num(1.0)),
            op: CmpOp::Lt,
            right: Operand::Const(Value::Num(2.0)),
            offset: 0.0,
        }];
        assert!(fused_in_bounds(&const_only, None, 0));
    }

    #[test]
    fn bounds_check_rejects_out_of_range() {
        assert!(!fused_in_bounds(&[cmp(0, 3)], None, 3));
        assert!(!fused_in_bounds(
            &[FusedOp::VarUnify { col_a: 5, col_b: 0 }],
            None,
            2
        ));
        let project = (vec![4], vec!["x".into()]);
        assert!(!fused_in_bounds(&[], Some(&project), 3));
    }
}
