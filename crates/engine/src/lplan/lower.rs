//! Pass 4 + lowering: turns the rewritten [`LNode`] tree back into a
//! physical [`Plan`], folding each run of adjacent selections (plus a
//! directly-above projection) into one [`Plan::Fused`] batch pass. A
//! fused pass over a cross join streams the product pairwise — the
//! interpreter never materializes the un-filtered product table.

use super::analyze;
use super::node::{peel, LNode};
use super::rewrite::straddling_similar;
use super::{OptCtx, OptReport};
use crate::plan::{FusedOp, Plan};

/// Lowers a logical node tree to a physical plan.
pub fn lower(n: LNode, ctx: &OptCtx<'_>, report: &mut OptReport) -> Option<Plan> {
    Some(match n {
        LNode::Leaf { plan } => plan,
        LNode::FromExtract { input, in_col } => Plan::FromExtract {
            input: Box::new(lower(*input, ctx, report)?),
            in_col,
        },
        LNode::GenerateProc {
            input,
            name,
            in_cols,
            out_arity,
        } => Plan::GenerateProc {
            input: Box::new(lower(*input, ctx, report)?),
            name,
            in_cols,
            out_arity,
        },
        LNode::Annotate {
            input,
            existence,
            annotated,
        } => Plan::Annotate {
            input: Box::new(lower(*input, ctx, report)?),
            existence,
            annotated,
        },
        LNode::Project { input, cols, names } => {
            let (ops, base) = peel(*input);
            lower_run(ops, base, Some((cols, names)), ctx, report)?
        }
        n @ LNode::Select { .. } => {
            let (ops, base) = peel(n);
            lower_run(ops, base, None, ctx, report)?
        }
        LNode::Join { left, right, .. } => Plan::CrossJoin {
            left: Box::new(lower(*left, ctx, report)?),
            right: Box::new(lower(*right, ctx, report)?),
        },
    })
}

/// Lowers one selection run (ops in application order) over `base`,
/// optionally capped by a projection.
fn lower_run(
    mut ops: Vec<FusedOp>,
    base: LNode,
    project: Option<(Vec<usize>, Vec<String>)>,
    ctx: &OptCtx<'_>,
    report: &mut OptReport,
) -> Option<Plan> {
    // Lower the base, keeping track of whether the fused pass would sit
    // directly on a cross join (streaming mode).
    let (base_plan, join_input, outer_right) = match base {
        LNode::Join {
            left,
            right,
            outer_right,
        } => {
            let la = analyze::arity(&left, ctx)?;
            let cj = Plan::CrossJoin {
                left: Box::new(lower(*left, ctx, report)?),
                right: Box::new(lower(*right, ctx, report)?),
            };
            // Keep the interpreter's token-prefilter similarity join: the
            // straddling filter stays a standalone FilterProc directly
            // above the CrossJoin, and the rest of the run fuses above it.
            if ops.first().is_some_and(|op| straddling_similar(op, la)) {
                match ops.remove(0) {
                    FusedOp::FilterProc { name, cols } => (
                        Plan::FilterProc {
                            input: Box::new(cj),
                            name,
                            cols,
                        },
                        false,
                        false,
                    ),
                    _ => unreachable!("straddling_similar only matches FilterProc"),
                }
            } else {
                (cj, true, outer_right)
            }
        }
        other => (lower(other, ctx, report)?, false, false),
    };

    let weight = ops.len() + usize::from(project.is_some());
    if (join_input && weight >= 1) || weight >= 2 {
        report.fused_nodes += 1;
        report.fused_steps += ops.len() as u32;
        return Some(Plan::Fused {
            input: Box::new(base_plan),
            ops,
            project,
            outer_right,
        });
    }
    // Nothing worth fusing: re-emit standalone operators.
    let mut out = base_plan;
    for op in ops {
        out = standalone(op, out);
    }
    if let Some((cols, names)) = project {
        out = Plan::Project {
            input: Box::new(out),
            cols,
            names,
        };
    }
    Some(out)
}

/// The standalone physical operator for one selection step (inverse of
/// [`super::node::build`]'s Select mapping).
fn standalone(op: FusedOp, input: Plan) -> Plan {
    let input = Box::new(input);
    match op {
        FusedOp::Constraint {
            col,
            constraint,
            priors,
        } => Plan::Constraint {
            input,
            col,
            constraint,
            priors,
        },
        FusedOp::Compare {
            left,
            op,
            right,
            offset,
        } => Plan::Compare {
            input,
            left,
            op,
            right,
            offset,
        },
        FusedOp::VarUnify { col_a, col_b } => Plan::VarUnify { input, col_a, col_b },
        FusedOp::FilterProc { name, cols } => Plan::FilterProc { input, name, cols },
    }
}
