//! The ψ annotation operator (§4.3): applies a rule's existence and
//! attribute annotations to the compact table its plan fragment produced.
//!
//! Two implementations:
//! * **BAnnotate** — the paper's default: convert to an a-table, build the
//!   per-key indexes, emit one a-tuple per key, convert back (exact).
//! * **compact-direct** — the full-paper optimization: operate on compact
//!   cells without expansion. Groups only tuples whose key cells are
//!   singleton-exact (everything else passes through unchanged), which is
//!   superset-preserving.

use iflex_ctable::{ATable, ATuple, Cell, CompactTable, CompactTuple, Value};
use iflex_text::DocumentStore;
use std::collections::{BTreeMap, BTreeSet};

/// Which ψ implementation ran (exposed for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotatePath {
    /// The paper's exact BAnnotate via a-table conversion.
    Exact,
    /// The compact-direct variant (superset-preserving, no conversion).
    CompactDirect,
}

/// Which ψ implementation the engine should use (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnnotatePolicy {
    /// Exact when the a-table fits the budget, compact-direct otherwise.
    #[default]
    Auto,
    /// Always the exact path (budget overflows degrade to compact-direct).
    ForceExact,
    /// Always the compact-direct path.
    ForceCompact,
}

/// Applies annotations `(existence, annotated_cols)` to `table`.
///
/// `budget` bounds the a-table conversion of the exact path; when it does
/// not fit, the compact-direct path is used instead.
pub fn apply_annotations(
    table: CompactTable,
    existence: bool,
    annotated: &[usize],
    store: &DocumentStore,
    budget: usize,
) -> (CompactTable, AnnotatePath) {
    apply_annotations_with(table, existence, annotated, store, budget, AnnotatePolicy::Auto)
}

/// The ψ policy to use given the run clock's state: once the deadline has
/// expired the operator is forced onto the compact-direct path, which
/// needs no a-table conversion and stays superset-preserving — the exact
/// path could burn the remaining wall clock on a conversion that will be
/// discarded anyway.
pub fn degraded_policy(policy: AnnotatePolicy, expired: bool) -> AnnotatePolicy {
    if expired {
        AnnotatePolicy::ForceCompact
    } else {
        policy
    }
}

/// [`apply_annotations`] with an explicit path policy (ablations).
pub fn apply_annotations_with(
    table: CompactTable,
    existence: bool,
    annotated: &[usize],
    store: &DocumentStore,
    budget: usize,
    policy: AnnotatePolicy,
) -> (CompactTable, AnnotatePath) {
    let (mut out, path) = if annotated.is_empty() {
        (table, AnnotatePath::CompactDirect)
    } else {
        let exact = |t: &CompactTable| bannotate_exact(t, annotated, store, budget);
        match policy {
            AnnotatePolicy::ForceCompact => (
                bannotate_compact(&table, annotated, store),
                AnnotatePath::CompactDirect,
            ),
            AnnotatePolicy::Auto | AnnotatePolicy::ForceExact => match exact(&table) {
                Some(t) => (t, AnnotatePath::Exact),
                None => (
                    bannotate_compact(&table, annotated, store),
                    AnnotatePath::CompactDirect,
                ),
            },
        }
    };
    if existence {
        for t in out.tuples_mut() {
            t.maybe = true;
        }
    }
    (out, path)
}

/// The paper's BAnnotate over a-tables. Returns `None` when the value
/// universe exceeds `budget`.
pub fn bannotate_exact(
    table: &CompactTable,
    annotated: &[usize],
    store: &DocumentStore,
    budget: usize,
) -> Option<CompactTable> {
    let at = ATable::from_compact(table, store, budget).ok()?;
    let arity = table.arity();
    let key_cols: Vec<usize> = (0..arity).filter(|c| !annotated.contains(c)).collect();

    // Index: key values → one value set per annotated column.
    let mut index: BTreeMap<Vec<Value>, Vec<BTreeSet<Value>>> = BTreeMap::new();
    // Keys for which some possible-relations-certain tuple exists.
    let mut certain: BTreeSet<Vec<Value>> = BTreeSet::new();

    for t in &at.tuples {
        // All key combinations of this a-tuple.
        let mut keys: Vec<Vec<Value>> = vec![Vec::new()];
        let mut combos: u64 = 1;
        for &kc in &key_cols {
            combos = combos.saturating_mul(t.cells[kc].len() as u64);
            if combos > budget as u64 {
                return None;
            }
            let mut next = Vec::new();
            for prefix in &keys {
                for v in &t.cells[kc] {
                    let mut k = prefix.clone();
                    k.push(v.clone());
                    next.push(k);
                }
            }
            keys = next;
        }
        let key_is_singleton = key_cols.iter().all(|&kc| t.cells[kc].len() == 1);
        for key in keys {
            let entry = index
                .entry(key.clone())
                .or_insert_with(|| vec![BTreeSet::new(); annotated.len()]);
            for (slot, &ac) in annotated.iter().enumerate() {
                entry[slot].extend(t.cells[ac].iter().cloned());
            }
            if !t.maybe && key_is_singleton {
                certain.insert(key);
            }
        }
    }

    // Emit one a-tuple per key, in the original column order.
    let mut out_at = ATable::new(table.columns().to_vec());
    for (key, sets) in index {
        let mut cells: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); arity];
        for (slot, &kc) in key_cols.iter().enumerate() {
            cells[kc].insert(key[slot].clone());
        }
        for (slot, &ac) in annotated.iter().enumerate() {
            cells[ac] = sets[slot].clone();
        }
        let mut tup = ATuple::new(cells);
        tup.maybe = !certain.contains(&key);
        out_at.tuples.push(tup);
    }
    Some(out_at.to_compact(store))
}

/// Compact-direct ψ: converts annotated expansion cells into choice cells,
/// groups tuples whose key cells are all singleton-exact, and merges the
/// annotated cells within each group. Superset-preserving.
pub fn bannotate_compact(
    table: &CompactTable,
    annotated: &[usize],
    store: &DocumentStore,
) -> CompactTable {
    let arity = table.arity();
    let key_cols: Vec<usize> = (0..arity).filter(|c| !annotated.contains(c)).collect();
    let mut out = CompactTable::new(table.columns().to_vec());

    struct Group {
        key_cells: Vec<Cell>,
        merged: Vec<Cell>,
        certain: bool,
    }
    let mut groups: BTreeMap<Vec<Value>, Group> = BTreeMap::new();

    for t in table.tuples() {
        // Attribute annotation turns tuple-level multiplicity into
        // value-level choice: drop the expand flag on annotated cells.
        let mut cells = t.cells.clone();
        for &ac in annotated {
            cells[ac].set_expand(false);
        }
        let key: Option<Vec<Value>> = key_cols
            .iter()
            .map(|&kc| cells[kc].exact_singleton().cloned())
            .collect();
        match key {
            None => {
                // Cannot group; pass through.
                out.push(CompactTuple {
                    cells,
                    maybe: t.maybe,
                });
            }
            Some(key) => {
                let g = groups.entry(key).or_insert_with(|| Group {
                    key_cells: key_cols.iter().map(|&kc| cells[kc].clone()).collect(),
                    merged: annotated.iter().map(|_| Cell::of(vec![])).collect(),
                    certain: false,
                });
                for (slot, &ac) in annotated.iter().enumerate() {
                    g.merged[slot].merge(&cells[ac]);
                }
                if !t.maybe {
                    g.certain = true;
                }
            }
        }
    }

    for (_, mut g) in groups {
        let mut cells: Vec<Cell> = vec![Cell::of(vec![]); arity];
        for (slot, &kc) in key_cols.iter().enumerate() {
            cells[kc] = g.key_cells[slot].clone();
        }
        for (slot, &ac) in annotated.iter().enumerate() {
            g.merged[slot].condense(store);
            cells[ac] = g.merged[slot].clone();
        }
        out.push(CompactTuple {
            cells,
            maybe: !g.certain,
        });
    }
    out.drop_impossible();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_ctable::Assignment;
    use iflex_text::{DocId, Span};

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    fn nv(n: f64) -> Value {
        Value::Num(n)
    }

    fn sv(s: &str) -> Value {
        Value::Str(s.into())
    }

    /// Builds the paper's Figure 5 input a-table T1 as a compact table.
    fn figure5_input() -> CompactTable {
        let mut t = CompactTable::new(vec!["name".into(), "age".into()]);
        t.push(CompactTuple::new(vec![
            Cell::of(vec![
                Assignment::Exact(sv("Alice")),
                Assignment::Exact(sv("Bob")),
            ]),
            Cell::exact(nv(5.0)),
        ]));
        t.push(CompactTuple::new(vec![
            Cell::of(vec![
                Assignment::Exact(sv("Alice")),
                Assignment::Exact(sv("Carol")),
            ]),
            Cell::of(vec![Assignment::Exact(nv(6.0)), Assignment::Exact(nv(7.0))]),
        ]));
        t.push(CompactTuple::new(vec![
            Cell::exact(sv("Dave")),
            Cell::of(vec![Assignment::Exact(nv(8.0)), Assignment::Exact(nv(9.0))]),
        ]));
        t
    }

    #[test]
    fn figure5_exact_bannotate() {
        let (st, _) = store_with("x");
        let out = bannotate_exact(&figure5_input(), &[1], &st, 10_000).unwrap();
        assert_eq!(out.len(), 4);
        let by_name: BTreeMap<String, (&CompactTuple, BTreeSet<Value>)> = out
            .tuples()
            .iter()
            .map(|t| {
                let name = match t.cells[0].exact_singleton().unwrap() {
                    Value::Str(s) => s.clone(),
                    _ => panic!(),
                };
                (name, (t, t.cells[1].value_set(&st)))
            })
            .collect();
        // Alice: ages {5,6,7}, maybe
        let (alice, ages) = &by_name["Alice"];
        assert!(alice.maybe);
        assert_eq!(ages.len(), 3);
        // Bob: {5}, maybe
        assert!(by_name["Bob"].0.maybe);
        // Carol: {6,7}, maybe
        assert!(by_name["Carol"].0.maybe);
        assert_eq!(by_name["Carol"].1.len(), 2);
        // Dave: {8,9}, NOT maybe (Figure 5.b)
        assert!(!by_name["Dave"].0.maybe);
        assert_eq!(by_name["Dave"].1.len(), 2);
    }

    #[test]
    fn compact_direct_matches_exact_on_singleton_keys() {
        let (st, _) = store_with("x");
        // input where every key (name) is singleton-exact
        let mut t = CompactTable::new(vec!["name".into(), "age".into()]);
        t.push(CompactTuple::new(vec![
            Cell::exact(sv("Dave")),
            Cell::exact(nv(8.0)),
        ]));
        t.push(CompactTuple::new(vec![
            Cell::exact(sv("Dave")),
            Cell::exact(nv(9.0)),
        ]));
        t.push(CompactTuple::maybe(vec![
            Cell::exact(sv("Eve")),
            Cell::exact(nv(1.0)),
        ]));
        let exact = bannotate_exact(&t, &[1], &st, 10_000).unwrap();
        let compact = bannotate_compact(&t, &[1], &st);
        assert_eq!(exact.len(), compact.len());
        for out in [&exact, &compact] {
            let dave = out
                .tuples()
                .iter()
                .find(|u| u.cells[0].exact_singleton() == Some(&sv("Dave")))
                .unwrap();
            assert!(!dave.maybe);
            assert_eq!(dave.cells[1].value_set(&st).len(), 2);
            let eve = out
                .tuples()
                .iter()
                .find(|u| u.cells[0].exact_singleton() == Some(&sv("Eve")))
                .unwrap();
            assert!(eve.maybe);
        }
    }

    #[test]
    fn expand_cell_becomes_choice_under_annotation() {
        // Mirrors Example 2.3: houses(x, <p>) with p an expansion cell over
        // the doc's numbers → one tuple per x with a choice of p.
        let (st, d) = store_with("351000 5146 2750");
        let full = st.doc(d).full_span();
        let mut t = CompactTable::new(vec!["x".into(), "p".into()]);
        t.push(CompactTuple::new(vec![
            Cell::exact(Value::Span(full)),
            Cell::expansion(vec![
                Assignment::exact_span(Span::new(d, 0, 6)),
                Assignment::exact_span(Span::new(d, 7, 11)),
                Assignment::exact_span(Span::new(d, 12, 16)),
            ]),
        ]));
        let (out, _) = apply_annotations(t, false, &[1], &st, 10_000);
        assert_eq!(out.len(), 1);
        let tup = &out.tuples()[0];
        // (the a-table path rebuilds cells, so the expand flag may be gone;
        // only the value set matters here)
        assert_eq!(tup.cells[1].value_set(&st).len(), 3);
        assert!(!tup.maybe);
    }

    #[test]
    fn existence_annotation_marks_all_maybe() {
        let (st, _) = store_with("x");
        let mut t = CompactTable::new(vec!["s".into()]);
        t.push(CompactTuple::new(vec![Cell::exact(nv(1.0))]));
        let (out, _) = apply_annotations(t, true, &[], &st, 100);
        assert!(out.tuples().iter().all(|u| u.maybe));
    }

    #[test]
    fn compact_direct_passes_through_nonexact_keys() {
        let (st, d) = store_with("a b");
        let mut t = CompactTable::new(vec!["k".into(), "v".into()]);
        t.push(CompactTuple::new(vec![
            Cell::contain(Span::new(d, 0, 3)), // non-singleton key
            Cell::exact(nv(1.0)),
        ]));
        let out = bannotate_compact(&t, &[1], &st);
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].cells[0], Cell::contain(Span::new(d, 0, 3)));
    }

    #[test]
    fn exact_path_budget_overflow_returns_none() {
        let (st, d) = store_with("a b c d e f g h i j k l m n o p q r s t");
        let full = st.doc(d).full_span();
        let mut t = CompactTable::new(vec!["k".into(), "v".into()]);
        t.push(CompactTuple::new(vec![
            Cell::contain(full),
            Cell::exact(nv(1.0)),
        ]));
        assert!(bannotate_exact(&t, &[1], &st, 10).is_none());
    }
}
