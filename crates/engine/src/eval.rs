//! Cell-level evaluation machinery: candidate-value extraction with
//! explicit completeness, and may/must (superset-semantics) evaluation of
//! comparisons and p-function filters.

use iflex_alog::CmpOp;
use iflex_ctable::{Assignment, Cell, Value};
use iflex_text::{parse_number, DocumentStore, Span, TokenKind};

/// Candidate values of a cell for predicate evaluation.
#[derive(Debug, Clone)]
pub enum Cands {
    /// The complete value set (within budget).
    Full(Vec<Value>),
    /// Only the numeric values (a `contain` too large to enumerate was
    /// reduced to its number tokens). Sound for numeric predicates; for
    /// others, satisfaction by a non-numeric value may be missed.
    NumericOnly(Vec<Value>),
    /// Nothing is known (too large to enumerate at all).
    Unknown,
}

/// Extracts candidates from `cell`, enumerating at most `cap` values.
pub fn candidates(cell: &Cell, store: &DocumentStore, cap: u64) -> Cands {
    let count = cell.value_count(store);
    if count <= cap {
        return Cands::Full(cell.values(store).collect());
    }
    // Fall back to numeric tokens of contain regions + exacts.
    let mut vals = Vec::new();
    for a in cell.assignments() {
        match a {
            Assignment::Exact(v) => vals.push(v.clone()),
            Assignment::Contain(s) => {
                let doc = store.doc(s.doc);
                for t in doc.token_slice(s) {
                    if t.kind == TokenKind::Number {
                        vals.push(Value::Span(Span::new(s.doc, t.start, t.end)));
                    }
                }
            }
        }
        if vals.len() as u64 > cap {
            return Cands::Unknown;
        }
    }
    Cands::NumericOnly(vals)
}

/// [`candidates`] under a run clock: once the deadline has expired
/// (`expired == true`), enumeration is skipped entirely and the answer is
/// [`Cands::Unknown`] — the conservative, superset-safe "keep as maybe"
/// signal that downstream may/must evaluation passes tuples through on.
/// This is how selections stay O(1) per tuple after expiry instead of
/// still paying full enumeration on the way out.
pub fn candidates_budgeted(
    cell: &Cell,
    store: &DocumentStore,
    cap: u64,
    expired: bool,
) -> Cands {
    if expired {
        return Cands::Unknown;
    }
    candidates(cell, store, cap)
}

/// Three-valued result of evaluating a predicate over a compact tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MayMust {
    /// Some possible tuple satisfies the predicate.
    pub may: bool,
    /// Every possible tuple satisfies the predicate.
    pub must: bool,
}

impl MayMust {
    /// No possible tuple satisfies the predicate.
    pub const NONE: MayMust = MayMust {
        may: false,
        must: false,
    };
    /// Some but not all possible tuples satisfy it.
    pub const SOME: MayMust = MayMust {
        may: true,
        must: false,
    };
    /// Every possible tuple satisfies it.
    pub const ALL: MayMust = MayMust {
        may: true,
        must: true,
    };
}

/// Compares two concrete values: numeric comparison when both sides parse
/// as numbers, textual equality otherwise (ordering on non-numbers fails).
pub fn compare_values(a: &Value, op: CmpOp, b: &Value, store: &DocumentStore) -> bool {
    // NULL comparisons: only `= NULL` / `!= NULL` are meaningful.
    let a_null = a.is_null();
    let b_null = b.is_null();
    if a_null || b_null {
        return match op {
            CmpOp::Eq => a_null && b_null,
            CmpOp::Ne => a_null != b_null,
            _ => false,
        };
    }
    if let (Some(x), Some(y)) = (a.as_num(store), b.as_num(store)) {
        return match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        };
    }
    match op {
        CmpOp::Eq => a.as_text(store) == b.as_text(store),
        CmpOp::Ne => a.as_text(store) != b.as_text(store),
        _ => false,
    }
}

fn op_is_numeric(op: CmpOp) -> bool {
    matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
}

/// Evaluates `left op right` over candidate sets with superset semantics.
pub fn compare_cands(
    left: &Cands,
    op: CmpOp,
    right: &Cands,
    store: &DocumentStore,
) -> MayMust {
    use Cands::*;
    match (left, right) {
        (Unknown, _) | (_, Unknown) => MayMust::SOME,
        // NumericOnly is complete for numeric ops (non-numbers can't
        // satisfy them), but `must` cannot hold because the cell also
        // encodes non-numeric values.
        (NumericOnly(a), NumericOnly(b)) => {
            if !op_is_numeric(op) && !matches!(op, CmpOp::Ne) {
                return MayMust::SOME;
            }
            let may = a
                .iter()
                .any(|x| b.iter().any(|y| compare_values(x, op, y, store)));
            MayMust {
                may: may || matches!(op, CmpOp::Ne),
                must: false,
            }
        }
        (NumericOnly(a), Full(b)) => numeric_one_sided(a, op, b, false, store),
        (Full(a), NumericOnly(b)) => numeric_one_sided(b, op, a, true, store),
        (Full(a), Full(b)) => {
            if a.is_empty() || b.is_empty() {
                return MayMust::NONE;
            }
            let mut may = false;
            let mut must = true;
            for x in a {
                for y in b {
                    if compare_values(x, op, y, store) {
                        may = true;
                    } else {
                        must = false;
                    }
                    if may && !must {
                        return MayMust::SOME;
                    }
                }
            }
            MayMust { may, must }
        }
    }
}

fn numeric_one_sided(
    numeric_side: &[Value],
    op: CmpOp,
    full_side: &[Value],
    numeric_is_right: bool,
    store: &DocumentStore,
) -> MayMust {
    if !op_is_numeric(op) && !matches!(op, CmpOp::Ne) {
        // equality against an un-enumerable cell: stay conservative
        return MayMust::SOME;
    }
    let may = numeric_side.iter().any(|x| {
        full_side.iter().any(|y| {
            if numeric_is_right {
                compare_values(y, op, x, store)
            } else {
                compare_values(x, op, y, store)
            }
        })
    });
    MayMust {
        may: may || matches!(op, CmpOp::Ne),
        must: false,
    }
}

/// Evaluates a boolean p-function over the cross product of candidate
/// values, with a combination budget.
pub fn filter_cands(
    cands: &[Cands],
    f: &dyn Fn(&[Value]) -> bool,
    combo_cap: u64,
) -> MayMust {
    // Any unknown/numeric-reduced side → conservative keep.
    let mut sets: Vec<&Vec<Value>> = Vec::with_capacity(cands.len());
    for c in cands {
        match c {
            Cands::Full(v) => sets.push(v),
            Cands::NumericOnly(_) | Cands::Unknown => return MayMust::SOME,
        }
    }
    if sets.iter().any(|s| s.is_empty()) {
        return MayMust::NONE;
    }
    let total: u64 = sets.iter().fold(1u64, |acc, s| {
        acc.saturating_mul(s.len() as u64)
    });
    if total > combo_cap {
        return MayMust::SOME;
    }
    let mut idx = vec![0usize; sets.len()];
    let mut args: Vec<Value> = Vec::with_capacity(sets.len());
    let mut may = false;
    let mut must = true;
    loop {
        args.clear();
        for (k, s) in sets.iter().enumerate() {
            args.push(s[idx[k]].clone());
        }
        if f(&args) {
            may = true;
        } else {
            must = false;
        }
        if may && !must {
            return MayMust::SOME;
        }
        // odometer
        let mut k = sets.len();
        loop {
            if k == 0 {
                return MayMust { may, must };
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < sets[k].len() {
                break;
            }
            idx[k] = 0;
            if k == 0 {
                return MayMust { may, must };
            }
        }
    }
}

/// True when the two cells may take equal values (used by variable
/// unification selections). Equality follows [`compare_values`]: numeric
/// when both sides parse as numbers, textual otherwise — so spans from
/// different documents with the same text unify, the natural semantics
/// for Datalog over extracted text.
pub fn cells_may_equal(
    a: &Cell,
    b: &Cell,
    store: &DocumentStore,
    cap: u64,
) -> MayMust {
    if let (Some(x), Some(y)) = (a.exact_singleton(), b.exact_singleton()) {
        return if compare_values(x, CmpOp::Eq, y, store) {
            MayMust::ALL
        } else {
            MayMust::NONE
        };
    }
    let ca = candidates(a, store, cap);
    let cb = candidates(b, store, cap);
    compare_cands(&ca, CmpOp::Eq, &cb, store)
}

/// Numeric value of a span cell when it encodes exactly one number.
pub fn singleton_number(cell: &Cell, store: &DocumentStore) -> Option<f64> {
    match cell.exact_singleton()? {
        Value::Num(n) => Some(*n),
        Value::Span(s) => parse_number(store.span_text(s)),
        Value::Str(s) => parse_number(s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_text::DocId;

    fn store_with(text: &str) -> (DocumentStore, DocId) {
        let mut st = DocumentStore::new();
        let id = st.add_plain(text);
        (st, id)
    }

    #[test]
    fn full_candidates_small_cell() {
        let (st, d) = store_with("a b");
        let c = Cell::contain(Span::new(d, 0, 3));
        match candidates(&c, &st, 10) {
            Cands::Full(v) => assert_eq!(v.len(), 3),
            _ => panic!(),
        }
    }

    #[test]
    fn numeric_fallback_for_large_cells() {
        let (st, d) = store_with("w1 w2 w3 w4 w5 42 w6 w7 w8 99 w9 w10");
        let full = st.doc(d).full_span();
        let c = Cell::contain(full);
        match candidates(&c, &st, 5) {
            Cands::NumericOnly(v) => {
                let texts: Vec<_> = v
                    .iter()
                    .map(|x| x.as_text(&st).to_string())
                    .collect();
                assert_eq!(texts, vec!["42", "99"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compare_values_numeric_and_text() {
        let (st, d) = store_with("619000 Basktall");
        let num_span = Value::Span(Span::new(d, 0, 6));
        assert!(compare_values(
            &num_span,
            CmpOp::Gt,
            &Value::Num(500000.0),
            &st
        ));
        let word = Value::Span(Span::new(d, 7, 15));
        assert!(compare_values(
            &word,
            CmpOp::Eq,
            &Value::Str("Basktall".into()),
            &st
        ));
        assert!(!compare_values(&word, CmpOp::Gt, &Value::Num(1.0), &st));
    }

    #[test]
    fn null_comparisons() {
        let (st, _) = store_with("x");
        assert!(compare_values(&Value::Null, CmpOp::Eq, &Value::Null, &st));
        assert!(compare_values(
            &Value::Num(1.0),
            CmpOp::Ne,
            &Value::Null,
            &st
        ));
        assert!(!compare_values(
            &Value::Num(1.0),
            CmpOp::Lt,
            &Value::Null,
            &st
        ));
    }

    #[test]
    fn may_must_full_full() {
        let (st, _) = store_with("x");
        let a = Cands::Full(vec![Value::Num(1.0), Value::Num(10.0)]);
        let b = Cands::Full(vec![Value::Num(5.0)]);
        let r = compare_cands(&a, CmpOp::Gt, &b, &st);
        assert_eq!(r, MayMust::SOME);
        let all = compare_cands(
            &Cands::Full(vec![Value::Num(7.0), Value::Num(9.0)]),
            CmpOp::Gt,
            &b,
            &st,
        );
        assert_eq!(all, MayMust::ALL);
        let none = compare_cands(
            &Cands::Full(vec![Value::Num(1.0)]),
            CmpOp::Gt,
            &b,
            &st,
        );
        assert_eq!(none, MayMust::NONE);
    }

    #[test]
    fn unknown_is_conservative() {
        let (st, _) = store_with("x");
        let r = compare_cands(
            &Cands::Unknown,
            CmpOp::Eq,
            &Cands::Full(vec![Value::Num(1.0)]),
            &st,
        );
        assert_eq!(r, MayMust::SOME);
    }

    #[test]
    fn numeric_only_sound_for_numeric_ops() {
        let (st, _) = store_with("x");
        let a = Cands::NumericOnly(vec![Value::Num(600000.0)]);
        let b = Cands::Full(vec![Value::Num(500000.0)]);
        let r = compare_cands(&a, CmpOp::Gt, &b, &st);
        assert!(r.may);
        assert!(!r.must);
        let a2 = Cands::NumericOnly(vec![Value::Num(100.0)]);
        let r2 = compare_cands(&a2, CmpOp::Gt, &b, &st);
        assert!(!r2.may);
    }

    #[test]
    fn filter_may_must() {
        let gt5 = |args: &[Value]| matches!(args[0], Value::Num(n) if n > 5.0);
        let r = filter_cands(
            &[Cands::Full(vec![Value::Num(3.0), Value::Num(7.0)])],
            &gt5,
            100,
        );
        assert_eq!(r, MayMust::SOME);
        let all = filter_cands(&[Cands::Full(vec![Value::Num(7.0)])], &gt5, 100);
        assert_eq!(all, MayMust::ALL);
        let none = filter_cands(&[Cands::Full(vec![Value::Num(1.0)])], &gt5, 100);
        assert_eq!(none, MayMust::NONE);
        let over_cap = filter_cands(
            &[
                Cands::Full(vec![Value::Num(1.0), Value::Num(2.0)]),
                Cands::Full(vec![Value::Num(1.0), Value::Num(2.0)]),
            ],
            &gt5,
            2,
        );
        assert_eq!(over_cap, MayMust::SOME);
    }

    #[test]
    fn cells_equality() {
        let (st, d) = store_with("a b");
        let ea = Cell::exact(Value::Span(Span::new(d, 0, 1)));
        let eb = Cell::exact(Value::Span(Span::new(d, 0, 1)));
        let ec = Cell::exact(Value::Span(Span::new(d, 2, 3)));
        assert_eq!(cells_may_equal(&ea, &eb, &st, 100), MayMust::ALL);
        assert_eq!(cells_may_equal(&ea, &ec, &st, 100), MayMust::NONE);
        let big = Cell::contain(Span::new(d, 0, 3));
        assert_eq!(cells_may_equal(&ea, &big, &st, 100), MayMust::SOME);
    }
}
