//! Logical plans for Alog rules (§4): one plan fragment per unfolded rule,
//! compiled bottom-up and capped with the ψ annotation operator.

use iflex_alog::{BodyAtom, CmpOp, ConstraintArg, Rule, Term};
use iflex_ctable::Value;
use iflex_features::{FeatureArg, FeatureValue};
use std::collections::BTreeMap;
use std::fmt;

/// A comparison operand: a column of the current intermediate table or a
/// constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column of the current intermediate schema.
    Col(usize),
    /// A constant value.
    Const(Value),
}

/// One domain constraint as compiled: feature name plus argument.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledConstraint {
    /// The feature.
    pub feature: String,
    /// The arg.
    pub arg: FeatureArg,
}

/// One selection step of a fused batch pipeline ([`Plan::Fused`]). Each
/// step is the per-tuple body of the corresponding standalone operator;
/// the fused interpreter replays them in order against one tuple without
/// materializing intermediate tables. Column indices refer to the fused
/// node's input schema (selections never change the schema).
#[derive(Debug, Clone)]
pub enum FusedOp {
    /// Per-tuple body of [`Plan::Constraint`].
    Constraint {
        /// Column the constraint applies to.
        col: usize,
        /// The newly applied constraint.
        constraint: CompiledConstraint,
        /// Constraints applied earlier to the same attribute.
        priors: Vec<CompiledConstraint>,
    },
    /// Per-tuple body of [`Plan::Compare`].
    Compare {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
        /// Constant added to the right operand.
        offset: f64,
    },
    /// Per-tuple body of [`Plan::VarUnify`].
    VarUnify {
        /// First unified column.
        col_a: usize,
        /// Second unified column.
        col_b: usize,
    },
    /// Per-tuple body of [`Plan::FilterProc`].
    FilterProc {
        /// Procedure name.
        name: String,
        /// Argument columns.
        cols: Vec<usize>,
    },
}

impl FusedOp {
    /// The input columns this step reads (used by the optimizer's
    /// dependency analysis; steps touching disjoint column sets commute
    /// byte-exactly).
    pub fn cols(&self) -> Vec<usize> {
        match self {
            FusedOp::Constraint { col, .. } => vec![*col],
            FusedOp::Compare { left, right, .. } => {
                let mut v = Vec::new();
                if let Operand::Col(c) = left {
                    v.push(*c);
                }
                if let Operand::Col(c) = right {
                    v.push(*c);
                }
                v
            }
            FusedOp::VarUnify { col_a, col_b } => vec![*col_a, *col_b],
            FusedOp::FilterProc { cols, .. } => cols.clone(),
        }
    }

    /// Short σ-style rendering for EXPLAIN output.
    pub fn render(&self) -> String {
        match self {
            FusedOp::Constraint { col, constraint, priors } => format!(
                "σ[{}(col {col}) = {}]{}",
                constraint.feature,
                constraint.arg,
                if priors.is_empty() {
                    String::new()
                } else {
                    format!(" (+{} priors)", priors.len())
                }
            ),
            FusedOp::Compare { left, op, right, offset } => {
                format!("σ[{left:?} {op} {right:?} + {offset}]")
            }
            FusedOp::VarUnify { col_a, col_b } => format!("σ[col {col_a} == col {col_b}]"),
            FusedOp::FilterProc { name, cols } => format!("σ[{name}{cols:?}]"),
        }
    }
}

/// A plan node. Column indices refer to the node's *input* schema; nodes
/// that add columns append them on the right.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan an extensional compact table.
    ScanExt {
        /// The predicate / relation name.
        name: String,
    },
    /// Scan an intensional relation computed earlier in evaluation order.
    ScanRel {
        /// The predicate / relation name.
        name: String,
    },
    /// The built-in `from(#x, y)`: appends an expansion cell
    /// `expand({contain(s) for s in cell})` (§4.2).
    FromExtract {
        /// Child plan.
        input: Box<Plan>,
        /// Column holding the source spans.
        in_col: usize,
    },
    /// Domain-constraint selection σ_{f(a)=v} on `col`, re-checking all
    /// `priors` on refined sub-spans (§4.2).
    Constraint {
        /// Child plan.
        input: Box<Plan>,
        /// Column the constraint applies to.
        col: usize,
        /// The newly applied constraint.
        constraint: CompiledConstraint,
        /// Constraints applied earlier to the same attribute (§4.2 re-checks).
        priors: Vec<CompiledConstraint>,
    },
    /// Comparison selection with may/must (superset) semantics; `offset`
    /// is added to the right operand (`lp < fp + 5`).
    Compare {
        /// Child plan.
        input: Box<Plan>,
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
        /// Constant added to the right operand.
        offset: f64,
    },
    /// Equality of two columns bound to the same rule variable.
    VarUnify {
        /// Child plan.
        input: Box<Plan>,
        /// First unified column.
        col_a: usize,
        /// Second unified column.
        col_b: usize,
    },
    /// Boolean p-function filter.
    FilterProc {
        /// Child plan.
        input: Box<Plan>,
        /// Procedure / relation name.
        name: String,
        /// Argument / projected columns.
        cols: Vec<usize>,
    },
    /// Generating p-predicate: appends `out_arity` columns.
    GenerateProc {
        /// Child plan.
        input: Box<Plan>,
        /// Procedure / relation name.
        name: String,
        /// Input-argument columns.
        in_cols: Vec<usize>,
        /// Number of appended output columns.
        out_arity: usize,
    },
    /// Cartesian product (θ-conditions are applied by later selects).
    CrossJoin {
        /// Left input plan.
        left: Box<Plan>,
        /// Right input plan.
        right: Box<Plan>,
    },
    /// Projection onto the given columns, renaming to `names`.
    Project {
        /// Child plan.
        input: Box<Plan>,
        /// Argument / projected columns.
        cols: Vec<usize>,
        /// Output column names.
        names: Vec<String>,
    },
    /// The ψ annotation operator (§4.3); column indices are post-project.
    Annotate {
        /// Child plan.
        input: Box<Plan>,
        /// Existence annotation flag.
        existence: bool,
        /// Attribute-annotated column indices.
        annotated: Vec<usize>,
    },
    /// A fused batch pass (DESIGN.md §11): a run of adjacent selections —
    /// optionally capped by a projection — executed as **one** pass over
    /// the input's tuples, with no intermediate table per operator. Only
    /// ever produced by the `lplan` optimizer; the compiler emits the
    /// standalone operators.
    ///
    /// When `input` is a [`Plan::CrossJoin`], the pass streams over the
    /// cross product directly (like the interpreter's ad-hoc fused join)
    /// instead of materializing it.
    Fused {
        /// Child plan.
        input: Box<Plan>,
        /// Selection steps, in application order.
        ops: Vec<FusedOp>,
        /// Trailing projection folded into the same pass, if any.
        project: Option<(Vec<usize>, Vec<String>)>,
        /// For a cross-join input: iterate the *right* side as the sharded
        /// outer loop (cardinality orientation). Output order and column
        /// layout remain left-major / left++right — the interpreter
        /// compensates by index-sorting, so results stay byte-identical.
        outer_right: bool,
    },
}

impl Plan {
    /// Pretty, indented operator-tree rendering (for EXPLAIN-style output).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            Plan::ScanExt { name } => {
                let _ = writeln!(out, "{pad}ScanExt({name})");
            }
            Plan::ScanRel { name } => {
                let _ = writeln!(out, "{pad}ScanRel({name})");
            }
            Plan::FromExtract { input, in_col } => {
                let _ = writeln!(out, "{pad}FromExtract(col {in_col})");
                input.explain_into(out, depth + 1);
            }
            Plan::Constraint {
                input,
                col,
                constraint,
                priors,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}σ[{}(col {col}) = {}] (+{} priors)",
                    constraint.feature,
                    constraint.arg,
                    priors.len()
                );
                input.explain_into(out, depth + 1);
            }
            Plan::Compare {
                input,
                left,
                op,
                right,
                offset,
            } => {
                let _ = writeln!(out, "{pad}σ[{left:?} {op} {right:?} + {offset}]");
                input.explain_into(out, depth + 1);
            }
            Plan::VarUnify { input, col_a, col_b } => {
                let _ = writeln!(out, "{pad}σ[col {col_a} == col {col_b}]");
                input.explain_into(out, depth + 1);
            }
            Plan::FilterProc { input, name, cols } => {
                let _ = writeln!(out, "{pad}Filter[{name}{cols:?}]");
                input.explain_into(out, depth + 1);
            }
            Plan::GenerateProc {
                input,
                name,
                in_cols,
                out_arity,
            } => {
                let _ = writeln!(out, "{pad}Generate[{name}{in_cols:?} +{out_arity}]");
                input.explain_into(out, depth + 1);
            }
            Plan::CrossJoin { left, right } => {
                let _ = writeln!(out, "{pad}CrossJoin");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Project { input, cols, names } => {
                let _ = writeln!(out, "{pad}π[{cols:?} as {names:?}]");
                input.explain_into(out, depth + 1);
            }
            Plan::Annotate {
                input,
                existence,
                annotated,
            } => {
                let _ = writeln!(out, "{pad}ψ[existence={existence}, attrs={annotated:?}]");
                input.explain_into(out, depth + 1);
            }
            Plan::Fused {
                input,
                ops,
                project,
                outer_right,
            } => {
                let mode = if *outer_right { ", outer=right" } else { "" };
                let _ = writeln!(out, "{pad}Fused[{} steps{mode}]", ops.len());
                if let Some((cols, names)) = project {
                    let _ = writeln!(out, "{pad}  π[{cols:?} as {names:?}]");
                }
                // Steps print outermost-last like standalone operators
                // would: the last-applied step first.
                for op in ops.iter().rev() {
                    let _ = writeln!(out, "{pad}  {}", op.render());
                }
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Error raised during plan compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The rule body cannot be ordered: some atom's inputs are never bound.
    Deadlock {
        /// The offending rule, rendered.
        rule: String,
        /// The atom that never became ready.
        atom: String,
    },
    /// A head variable is unbound after the whole body (unsafe rule).
    UnboundHead {
        /// The offending rule, rendered.
        rule: String,
        /// The variable concerned.
        var: String,
    },
    /// `from`'s first argument must be a bound input variable.
    BadFrom {
        /// The offending rule, rendered.
        rule: String,
    },
    /// A constraint's value is malformed (unknown symbol).
    BadConstraintValue {
        /// The offending rule, rendered.
        rule: String,
        /// The malformed value, rendered.
        value: String,
    },
    /// A predicate is not a relation, not `from`, and not a procedure.
    UnknownPredicate {
        /// The offending rule, rendered.
        rule: String,
        /// The predicate / relation name.
        name: String,
    },
    /// A compiler invariant failed — reported as an error instead of a
    /// panic so one bad rule cannot take the engine down.
    Internal {
        /// The offending rule, rendered.
        rule: String,
        /// Which invariant failed.
        detail: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Deadlock { rule, atom } => {
                write!(f, "cannot order rule body (atom '{atom}' never ready): {rule}")
            }
            PlanError::UnboundHead { rule, var } => {
                write!(f, "head variable {var} unbound in: {rule}")
            }
            PlanError::BadFrom { rule } => {
                write!(f, "from(#x, y) needs a bound input variable in: {rule}")
            }
            PlanError::BadConstraintValue { rule, value } => {
                write!(f, "bad constraint value {value} in: {rule}")
            }
            PlanError::UnknownPredicate { rule, name } => {
                write!(f, "predicate {name} is not a relation or procedure in: {rule}")
            }
            PlanError::Internal { rule, detail } => {
                write!(f, "compiler invariant failed ({detail}) in: {rule}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// What the compiler needs to know about predicate names.
pub struct CompileEnv<'a> {
    /// Extensional table name → column count.
    pub extensional: &'a BTreeMap<String, usize>,
    /// Intensional predicate name → column count (computed earlier).
    pub intensional: &'a BTreeMap<String, usize>,
    /// Procedure name → (is_filter, out_arity).
    pub procedures: &'a BTreeMap<String, (bool, usize)>,
}

/// Fingerprint of a compiled rule for the incremental re-execution cache
/// (DESIGN.md §9): a hash of the rendered rule — which, for an unfolded
/// program, already inlines the entire description-rule chain including
/// every domain constraint and annotation — plus the signature of each
/// p-predicate procedure the body calls, so re-registering a procedure
/// with a different shape changes the fingerprint even though the rule
/// text is identical. Two rules share a fingerprint exactly when they
/// compile to the same plan over the same procedure registry.
pub fn rule_fingerprint(rule: &Rule, env: &CompileEnv<'_>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    rule.to_string().hash(&mut h);
    for atom in &rule.body {
        if let BodyAtom::Pred { name, .. } = atom {
            if let Some(sig) = env.procedures.get(name) {
                name.hash(&mut h);
                sig.hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Converts a parsed constraint value into a [`FeatureArg`].
pub fn constraint_arg(value: &ConstraintArg) -> Option<FeatureArg> {
    Some(match value {
        ConstraintArg::Num(n) => FeatureArg::Num(*n),
        ConstraintArg::Str(s) => FeatureArg::Text(s.clone()),
        ConstraintArg::Symbol(s) => {
            FeatureArg::Tri(s.parse::<FeatureValue>().ok()?)
        }
    })
}

fn term_value(t: &Term) -> Option<Value> {
    Some(match t {
        Term::Num(n) => Value::Num(*n),
        Term::Str(s) => Value::Str(s.clone()),
        Term::Null => Value::Null,
        Term::Var(_) => return None,
    })
}

/// One independent sub-plan during compilation: a connected component of
/// the rule body. Branches are only cross-joined when an atom genuinely
/// spans them, so per-side extraction and selection stay on the small
/// side of every join.
struct Branch {
    plan: Plan,
    /// var name → column in this branch's schema.
    bound: BTreeMap<String, usize>,
    ncols: usize,
    /// Constraints applied so far, per variable (§4.2 prior re-checks).
    applied: BTreeMap<String, Vec<CompiledConstraint>>,
}

impl Branch {
    fn unify_dup(&mut self, var: &str, new_col: usize) {
        if let Some(&old) = self.bound.get(var) {
            let input = std::mem::replace(&mut self.plan, Plan::ScanExt { name: String::new() });
            self.plan = Plan::VarUnify {
                input: Box::new(input),
                col_a: old,
                col_b: new_col,
            };
        } else {
            self.bound.insert(var.to_string(), new_col);
        }
    }
}

/// Merges two branches with a cross join, unifying variables bound on
/// both sides.
fn merge(a: Branch, b: Branch) -> Branch {
    let shift = a.ncols;
    let mut bound = a.bound.clone();
    let mut plan = Plan::CrossJoin {
        left: Box::new(a.plan),
        right: Box::new(b.plan),
    };
    let mut applied = a.applied;
    for (var, chain) in b.applied {
        applied.entry(var).or_default().extend(chain);
    }
    for (var, col) in b.bound {
        let bcol = col + shift;
        match bound.get(&var) {
            Some(&acol) => {
                plan = Plan::VarUnify {
                    input: Box::new(plan),
                    col_a: acol,
                    col_b: bcol,
                };
            }
            None => {
                bound.insert(var, bcol);
            }
        }
    }
    Branch {
        plan,
        bound,
        ncols: a.ncols + b.ncols,
        applied,
    }
}

/// Merges the branches at `idxs` out of `branches`, returning the merged
/// branch's new index; `None` when `idxs` is empty (nothing to merge).
fn merge_indices(branches: &mut Vec<Branch>, mut idxs: Vec<usize>) -> Option<usize> {
    idxs.sort_unstable();
    idxs.dedup();
    let first = *idxs.first()?;
    // Remove from the back so earlier indices stay valid.
    let mut acc: Option<Branch> = None;
    for &i in idxs.iter().rev() {
        let b = branches.remove(i);
        acc = Some(match acc {
            None => b,
            Some(prev) => merge(b, prev),
        });
    }
    branches.insert(first, acc?);
    Some(first)
}

fn branch_of(branches: &[Branch], var: &str) -> Option<usize> {
    branches.iter().position(|b| b.bound.contains_key(var))
}

/// Compiles one unfolded, non-description rule into a plan fragment whose
/// output columns are the head variables in order (ψ appended last).
///
/// Atoms are applied in a ready-first order over independent branches:
/// relation scans open branches; `from`, constraints, and single-branch
/// selections stay on their branch; predicates spanning branches merge
/// them (cross join + variable unification) first.
pub fn compile_rule(rule: &Rule, env: &CompileEnv<'_>) -> Result<Plan, PlanError> {
    let rule_str = rule.to_string();
    let mut branches: Vec<Branch> = Vec::new();

    let mut pending: Vec<&BodyAtom> = rule.body.iter().collect();
    while !pending.is_empty() {
        let mut progressed = false;
        let mut i = 0;
        while i < pending.len() {
            if apply_atom(pending[i], env, &mut branches, &rule_str)? {
                pending.remove(i);
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            return Err(PlanError::Deadlock {
                rule: rule_str,
                atom: pending[0].to_string(),
            });
        }
    }

    if branches.is_empty() {
        return Err(PlanError::Deadlock {
            rule: rule_str,
            atom: "<empty body>".into(),
        });
    }
    // Join all remaining branches.
    while branches.len() > 1 {
        let b = branches.remove(1);
        let a = branches.remove(0);
        branches.insert(0, merge(a, b));
    }
    let branch = branches.pop().ok_or_else(|| PlanError::Internal {
        rule: rule.to_string(),
        detail: "branch join left no branch".into(),
    })?;

    // Project to head variables.
    let mut proj_cols = Vec::with_capacity(rule.head.args.len());
    let mut names = Vec::with_capacity(rule.head.args.len());
    for a in &rule.head.args {
        let col = branch
            .bound
            .get(&a.var)
            .copied()
            .ok_or(PlanError::UnboundHead {
                rule: rule.to_string(),
                var: a.var.clone(),
            })?;
        proj_cols.push(col);
        names.push(a.var.clone());
    }
    let projected = Plan::Project {
        input: Box::new(branch.plan),
        cols: proj_cols,
        names,
    };

    // ψ for the rule's annotations.
    let annotated: Vec<usize> = rule
        .head
        .args
        .iter()
        .enumerate()
        .filter(|(_, a)| a.annotated)
        .map(|(i, _)| i)
        .collect();
    if rule.head.existence || !annotated.is_empty() {
        Ok(Plan::Annotate {
            input: Box::new(projected),
            existence: rule.head.existence,
            annotated,
        })
    } else {
        Ok(projected)
    }
}

/// Attempts to apply `atom`; returns false when its inputs are not bound
/// in any branch yet.
fn apply_atom(
    atom: &BodyAtom,
    env: &CompileEnv<'_>,
    branches: &mut Vec<Branch>,
    rule_str: &str,
) -> Result<bool, PlanError> {
    match atom {
        BodyAtom::Pred { name, args } if name == "from" => {
            let [inp, out] = args.as_slice() else {
                return Err(PlanError::BadFrom {
                    rule: rule_str.to_string(),
                });
            };
            let (Some(in_var), Some(out_var)) = (inp.term.var(), out.term.var()) else {
                return Err(PlanError::BadFrom {
                    rule: rule_str.to_string(),
                });
            };
            let Some(bi) = branch_of(branches, in_var) else {
                return Ok(false);
            };
            let b = &mut branches[bi];
            let in_col = b.bound[in_var];
            let input = std::mem::replace(&mut b.plan, Plan::ScanExt { name: String::new() });
            b.plan = Plan::FromExtract {
                input: Box::new(input),
                in_col,
            };
            let new_col = b.ncols;
            b.ncols += 1;
            // Out var duplicated in the same branch → unify; in another
            // branch → unified at merge time.
            b.unify_dup(out_var, new_col);
            Ok(true)
        }
        BodyAtom::Pred { name, args } => {
            if env.extensional.contains_key(name) || env.intensional.contains_key(name) {
                let scan = if env.extensional.contains_key(name) {
                    Plan::ScanExt { name: name.clone() }
                } else {
                    Plan::ScanRel { name: name.clone() }
                };
                let mut b = Branch {
                    plan: scan,
                    bound: BTreeMap::new(),
                    ncols: args.len(),
                    applied: BTreeMap::new(),
                };
                for (col, a) in args.iter().enumerate() {
                    match &a.term {
                        Term::Var(v) => b.unify_dup(v, col),
                        other => {
                            let c = term_value(other).ok_or_else(|| PlanError::Internal {
                                rule: rule_str.to_string(),
                                detail: "variable term in constant position".into(),
                            })?;
                            let input = std::mem::replace(
                                &mut b.plan,
                                Plan::ScanExt { name: String::new() },
                            );
                            b.plan = Plan::Compare {
                                input: Box::new(input),
                                left: Operand::Col(col),
                                op: CmpOp::Eq,
                                right: Operand::Const(c),
                                offset: 0.0,
                            };
                        }
                    }
                }
                branches.push(b);
                Ok(true)
            } else if let Some(&(is_filter, out_arity)) = env.procedures.get(name) {
                if is_filter {
                    let mut vars: Vec<&str> = Vec::with_capacity(args.len());
                    for a in args {
                        match a.term.var() {
                            Some(v) => vars.push(v),
                            None => {
                                return Err(PlanError::UnknownPredicate {
                                    rule: rule_str.to_string(),
                                    name: format!("{name} (constant arg)"),
                                })
                            }
                        }
                    }
                    let mut idxs = Vec::new();
                    for v in &vars {
                        match branch_of(branches, v) {
                            Some(i) => idxs.push(i),
                            None => return Ok(false),
                        }
                    }
                    if idxs.is_empty() {
                        // zero-variable filter: attach to the first branch
                        // (evaluated once per tuple, like a constant-only
                        // comparison)
                        if branches.is_empty() {
                            return Ok(false);
                        }
                        idxs.push(0);
                    }
                    let bi = merge_indices(branches, idxs).ok_or_else(|| PlanError::Internal {
                        rule: rule_str.to_string(),
                        detail: "filter branch merge produced no branch".into(),
                    })?;
                    let b = &mut branches[bi];
                    let cols: Vec<usize> = vars.iter().map(|v| b.bound[*v]).collect();
                    let input =
                        std::mem::replace(&mut b.plan, Plan::ScanExt { name: String::new() });
                    b.plan = Plan::FilterProc {
                        input: Box::new(input),
                        name: name.clone(),
                        cols,
                    };
                    Ok(true)
                } else {
                    // generator: `#`-marked args are inputs, the rest outputs
                    let in_vars: Vec<&str> = args
                        .iter()
                        .filter(|a| a.input)
                        .filter_map(|a| a.term.var())
                        .collect();
                    let out_args: Vec<&iflex_alog::Arg> =
                        args.iter().filter(|a| !a.input).collect();
                    if out_args.len() != out_arity {
                        return Err(PlanError::UnknownPredicate {
                            rule: rule_str.to_string(),
                            name: format!("{name} (arity mismatch)"),
                        });
                    }
                    let mut idxs = Vec::new();
                    for v in &in_vars {
                        match branch_of(branches, v) {
                            Some(i) => idxs.push(i),
                            None => return Ok(false),
                        }
                    }
                    if idxs.is_empty() {
                        return Ok(false);
                    }
                    let bi = merge_indices(branches, idxs).ok_or_else(|| PlanError::Internal {
                        rule: rule_str.to_string(),
                        detail: "generator branch merge produced no branch".into(),
                    })?;
                    let b = &mut branches[bi];
                    let in_cols: Vec<usize> = in_vars.iter().map(|v| b.bound[*v]).collect();
                    let input =
                        std::mem::replace(&mut b.plan, Plan::ScanExt { name: String::new() });
                    b.plan = Plan::GenerateProc {
                        input: Box::new(input),
                        name: name.clone(),
                        in_cols,
                        out_arity,
                    };
                    for a in &out_args {
                        let col = b.ncols;
                        b.ncols += 1;
                        match &a.term {
                            Term::Var(v) => b.unify_dup(v, col),
                            other => {
                                let c = term_value(other).ok_or_else(|| PlanError::Internal {
                                    rule: rule_str.to_string(),
                                    detail: "variable term in constant position".into(),
                                })?;
                                let input = std::mem::replace(
                                    &mut b.plan,
                                    Plan::ScanExt { name: String::new() },
                                );
                                b.plan = Plan::Compare {
                                    input: Box::new(input),
                                    left: Operand::Col(col),
                                    op: CmpOp::Eq,
                                    right: Operand::Const(c),
                                    offset: 0.0,
                                };
                            }
                        }
                    }
                    Ok(true)
                }
            } else {
                Err(PlanError::UnknownPredicate {
                    rule: rule_str.to_string(),
                    name: name.clone(),
                })
            }
        }
        BodyAtom::Compare {
            left,
            op,
            right,
            offset,
        } => {
            let mut idxs = Vec::new();
            for t in [left, right] {
                if let Term::Var(v) = t {
                    match branch_of(branches, v) {
                        Some(i) => idxs.push(i),
                        None => return Ok(false),
                    }
                }
            }
            if idxs.is_empty() {
                // constant-only comparison: attach to the first branch
                if branches.is_empty() {
                    return Ok(false);
                }
                idxs.push(0);
            }
            let bi = merge_indices(branches, idxs).ok_or_else(|| PlanError::Internal {
                rule: rule_str.to_string(),
                detail: "comparison branch merge produced no branch".into(),
            })?;
            let b = &mut branches[bi];
            let resolve = |t: &Term, b: &Branch| -> Result<Operand, PlanError> {
                match t {
                    Term::Var(v) => Ok(Operand::Col(b.bound[v.as_str()])),
                    other => term_value(other).map(Operand::Const).ok_or_else(|| {
                        PlanError::Internal {
                            rule: rule_str.to_string(),
                            detail: "unbound variable resolved as constant".into(),
                        }
                    }),
                }
            };
            let l = resolve(left, b)?;
            let r = resolve(right, b)?;
            let input = std::mem::replace(&mut b.plan, Plan::ScanExt { name: String::new() });
            b.plan = Plan::Compare {
                input: Box::new(input),
                left: l,
                op: *op,
                right: r,
                offset: *offset,
            };
            Ok(true)
        }
        BodyAtom::Constraint {
            feature,
            var,
            value,
        } => {
            let Some(bi) = branch_of(branches, var) else {
                return Ok(false);
            };
            let arg = constraint_arg(value).ok_or_else(|| PlanError::BadConstraintValue {
                rule: rule_str.to_string(),
                value: value.to_string(),
            })?;
            let cc = CompiledConstraint {
                feature: feature.clone(),
                arg,
            };
            let b = &mut branches[bi];
            let col = b.bound[var.as_str()];
            let priors = b.applied.entry(var.clone()).or_default();
            let prior_list = priors.clone();
            priors.push(cc.clone());
            let input = std::mem::replace(&mut b.plan, Plan::ScanExt { name: String::new() });
            b.plan = Plan::Constraint {
                input: Box::new(input),
                col,
                constraint: cc,
                priors: prior_list,
            };
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iflex_alog::parse_rule;

    #[allow(clippy::type_complexity)]
    fn env_maps() -> (
        BTreeMap<String, usize>,
        BTreeMap<String, usize>,
        BTreeMap<String, (bool, usize)>,
    ) {
        let mut ext = BTreeMap::new();
        ext.insert("pagesA".to_string(), 1);
        ext.insert("pagesB".to_string(), 1);
        let int = BTreeMap::new();
        let mut procs = BTreeMap::new();
        procs.insert("similar".to_string(), (true, 0));
        procs.insert("gen".to_string(), (false, 1));
        (ext, int, procs)
    }

    fn compile(src: &str) -> Plan {
        let (ext, int, procs) = env_maps();
        let env = CompileEnv {
            extensional: &ext,
            intensional: &int,
            procedures: &procs,
        };
        compile_rule(&parse_rule(src).unwrap(), &env).unwrap()
    }

    #[test]
    fn per_side_work_stays_below_the_join() {
        // Both sides extract before the cross join: the CrossJoin node must
        // sit *above* the FromExtract/Constraint nodes of both branches.
        let plan = compile(
            "q(a, b) :- pagesA(x), from(#x, a), numeric(a) = yes, \
             pagesB(y), from(#y, b), numeric(b) = yes, similar(#a, #b).",
        );
        let explained = plan.explain();
        let join_pos = explained.find("CrossJoin").unwrap();
        let from_positions: Vec<usize> = explained
            .match_indices("FromExtract")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(from_positions.len(), 2);
        // In the indented tree, children print after parents; both
        // FromExtracts must be below (after) the join line, and the filter
        // above it.
        assert!(from_positions.iter().all(|&p| p > join_pos));
        let filter_pos = explained.find("Filter[similar").unwrap();
        assert!(filter_pos < join_pos);
    }

    #[test]
    fn shared_var_across_branches_unifies_at_merge() {
        let plan = compile("q(x) :- pagesA(x), pagesB(x).");
        let explained = plan.explain();
        assert!(explained.contains("col 0 == col 1"), "{explained}");
    }

    #[test]
    fn duplicate_var_within_atom_unifies() {
        let (ext, int, procs) = {
            let mut ext = BTreeMap::new();
            ext.insert("r".to_string(), 2);
            (ext, BTreeMap::new(), procs_map())
        };
        fn procs_map() -> BTreeMap<String, (bool, usize)> {
            BTreeMap::new()
        }
        let env = CompileEnv {
            extensional: &ext,
            intensional: &int,
            procedures: &procs,
        };
        let plan = compile_rule(&parse_rule("q(x) :- r(x, x).").unwrap(), &env).unwrap();
        assert!(plan.explain().contains("=="));
    }

    #[test]
    fn constants_become_selections() {
        let plan = compile("q(x) :- pagesA(x), x = 5.");
        assert!(plan.explain().contains("Const(Num(5.0))"));
    }

    #[test]
    fn generator_waits_for_inputs() {
        let plan = compile("q(x, o) :- gen(#x, o), pagesA(x).");
        let explained = plan.explain();
        assert!(explained.contains("Generate[gen"));
    }

    #[test]
    fn deadlock_reported() {
        let (ext, int, procs) = env_maps();
        let env = CompileEnv {
            extensional: &ext,
            intensional: &int,
            procedures: &procs,
        };
        let err =
            compile_rule(&parse_rule("q(a) :- from(#z, a).").unwrap(), &env).unwrap_err();
        assert!(matches!(err, PlanError::Deadlock { .. }));
    }

    #[test]
    fn annotations_cap_the_plan() {
        let plan = compile("q(x, <a>)? :- pagesA(x), from(#x, a).");
        let explained = plan.explain();
        assert!(explained.starts_with("ψ[existence=true, attrs=[1]]"));
    }

    #[test]
    fn unknown_predicate_error() {
        let (ext, int, procs) = env_maps();
        let env = CompileEnv {
            extensional: &ext,
            intensional: &int,
            procedures: &procs,
        };
        let err = compile_rule(&parse_rule("q(x) :- mystery(x).").unwrap(), &env).unwrap_err();
        assert!(matches!(err, PlanError::UnknownPredicate { .. }));
    }
}
