//! Deterministic scoped-thread fan-out for per-tuple operators.
//!
//! [`scatter`] splits a slice of work items into at most `threads`
//! contiguous shards, runs each shard on a scoped worker thread, and
//! returns per-shard results *in shard order*. Because shards are
//! contiguous and results are folded in order, a parallel run produces
//! byte-identical output to the serial one — including which error
//! surfaces first: the first `Err` in shard order corresponds to the
//! earliest failing item a serial scan would have hit.
//!
//! A panicking worker is contained: its shard result becomes
//! [`EngineError::RulePanic`], which the rule boundary in `exec.rs`
//! turns into a per-rule degradation rather than an abort.

use std::time::Instant;

use iflex_obs::{SpanId, SpanKind, Tracer};

use crate::exec::{panic_message, EngineError};

/// Panic-safe shard span: begun at worker start, ended on drop so the
/// journal stays well-nested even when a worker panics and unwinds.
struct ShardSpan<'a> {
    tracer: &'a Tracer,
    id: SpanId,
    shard: u64,
    start: Instant,
}

impl<'a> ShardSpan<'a> {
    fn begin(trace: Option<(&'a Tracer, SpanId)>, shard: usize) -> Option<Self> {
        trace.map(|(tracer, parent)| ShardSpan {
            id: tracer.begin(parent, SpanKind::Shard, &format!("shard{shard}")),
            tracer,
            shard: shard as u64,
            start: Instant::now(),
        })
    }
}

impl Drop for ShardSpan<'_> {
    fn drop(&mut self) {
        self.tracer.end_with(
            self.id,
            &[
                ("shard", self.shard),
                ("busy_us", self.start.elapsed().as_micros() as u64),
            ],
        );
    }
}

/// The outcome of one [`scatter`] call.
pub struct ShardRun<R> {
    /// Per-shard results, in shard (= input) order.
    pub shards: Vec<Result<Vec<R>, EngineError>>,
    /// Per-shard busy wall-clock, in microseconds (0 for a shard whose
    /// worker panicked).
    pub shard_micros: Vec<u64>,
    /// Whether worker threads were actually spawned (false for the
    /// serial fallback on small inputs or `threads <= 1`).
    pub went_parallel: bool,
}

impl<R> ShardRun<R> {
    /// Concatenates shard outputs in order, surfacing the first error in
    /// shard order — the same error a serial scan would return.
    pub fn merge(self) -> Result<Vec<R>, EngineError> {
        let mut out = Vec::new();
        for shard in self.shards {
            out.extend(shard?);
        }
        Ok(out)
    }
}

/// Runs `run` over contiguous shards of `items` on up to `threads`
/// scoped worker threads. Falls back to a single in-thread shard when
/// parallelism cannot pay for itself (`threads <= 1`, or fewer than two
/// items per worker).
///
/// `trace` is an enabled-tracer context (`Tracer::ctx(span)`), or `None`
/// when tracing is off: each shard then records a `shard<i>` span under
/// the given parent, closed by a drop guard so a panicking worker still
/// leaves a well-nested journal.
pub fn scatter<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    trace: Option<(&Tracer, SpanId)>,
    run: impl Fn(&[T]) -> Result<Vec<R>, EngineError> + Sync,
) -> ShardRun<R> {
    let threads = threads.max(1);
    if threads <= 1 || items.len() < 2 * threads {
        let _span = ShardSpan::begin(trace, 0);
        let start = Instant::now();
        let result = run(items);
        return ShardRun {
            shards: vec![result],
            shard_micros: vec![start.elapsed().as_micros() as u64],
            went_parallel: false,
        };
    }

    let chunk = items.len().div_ceil(threads);
    let (shards, shard_micros) = std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, shard)| {
                scope.spawn(move || {
                    let _span = ShardSpan::begin(trace, i);
                    let start = Instant::now();
                    let result = run(shard);
                    (result, start.elapsed().as_micros() as u64)
                })
            })
            .collect();
        let mut shards = Vec::with_capacity(handles.len());
        let mut micros = Vec::with_capacity(handles.len());
        for h in handles {
            match h.join() {
                Ok((result, us)) => {
                    shards.push(result);
                    micros.push(us);
                }
                Err(p) => {
                    shards.push(Err(EngineError::RulePanic(panic_message(p.as_ref()))));
                    micros.push(0);
                }
            }
        }
        (shards, micros)
    });
    ShardRun {
        shards,
        shard_micros,
        went_parallel: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let run = |xs: &[u64]| Ok(xs.iter().map(|x| x * 3 + 1).collect());
        let serial = scatter(1, &items, None, run).merge().unwrap();
        for threads in [2, 3, 8] {
            let par = scatter(threads, &items, None, run);
            assert!(par.went_parallel);
            assert_eq!(par.merge().unwrap(), serial);
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        let items = [1u64, 2, 3];
        let out = scatter(8, &items, None, |xs| Ok(xs.to_vec()));
        assert!(!out.went_parallel);
        assert_eq!(out.shards.len(), 1);
    }

    #[test]
    fn first_error_in_shard_order_wins() {
        let items: Vec<usize> = (0..64).collect();
        let run = |xs: &[usize]| -> Result<Vec<usize>, EngineError> {
            // Every shard errors, naming its first item; the merged error
            // must be the one from the first shard.
            Err(EngineError::TooLarge(format!("item {}", xs[0])))
        };
        match scatter(4, &items, None, run).merge() {
            Err(EngineError::TooLarge(msg)) => assert_eq!(msg, "item 0"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn worker_panic_becomes_rule_panic() {
        let items: Vec<usize> = (0..64).collect();
        let out = scatter(4, &items, None, |xs: &[usize]| {
            if xs.contains(&63) {
                panic!("worker exploded");
            }
            Ok(xs.to_vec())
        });
        assert!(out.went_parallel);
        match out.merge() {
            Err(EngineError::RulePanic(msg)) => assert!(msg.contains("worker exploded")),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
