//! Morsel-driven work-stealing fan-out for per-tuple operators.
//!
//! [`scatter`] runs an index-range closure over `0..n` using a persistent
//! per-run worker pool ([`RunPool`]): instead of cutting the input into
//! one fixed contiguous shard per thread, the section keeps a shared
//! atomic *morsel dispenser*. Every participant (the calling thread plus
//! the pool workers) owns a contiguous segment and claims small ranges —
//! morsels — from its front; a participant whose segment runs dry *steals*
//! morsels from the back of the fullest remaining segment, so fast
//! workers drain slow workers' leftovers instead of idling at the merge
//! barrier.
//!
//! Morsel size is auto-tuned per section: the caller's thread first runs
//! a small calibration morsel, and the measured per-tuple cost sizes the
//! remaining morsels to target [`MORSEL_TARGET_US`] of work each, clamped
//! to the caller's [`MorselCfg`] (`Limits::morsel_tuples`). Cheap tuples
//! get big morsels (low dispatch overhead); expensive tuples get small
//! ones (fine-grained stealing).
//!
//! Determinism: results are folded by morsel *start index*, not by thread
//! — [`MorselRun::merge`] sorts parts by start and concatenates, so a
//! parallel run produces byte-identical output to the serial one. Every
//! claimed morsel runs to completion (or records its error); the merged
//! error is the one with the lowest start index, which is the error a
//! serial scan would have surfaced first.
//!
//! The closure receives plain index ranges, so morsels are agnostic to
//! the table layout: over the row core a morsel is a slice of tuples,
//! over the columnar core (DESIGN.md §14) the same `Range<usize>` slices
//! every column's contiguous per-row id run (`Column::ids()[range]`) —
//! one dispenser serves both ablation arms of `Limits::use_columnar`.
//!
//! A panicking morsel is contained: its part becomes
//! [`EngineError::RulePanic`], which the rule boundary in `exec.rs` turns
//! into a per-rule degradation rather than an abort. Busy time is
//! recorded around the containment, so a panicked participant still
//! reports the time it burned up to the panic. The run clock is probed at
//! every morsel boundary: once tripped, remaining morsels record the
//! degradation cause without running, draining the dispenser quickly.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use iflex_obs::{SpanId, SpanKind, Tracer};

use crate::budget::RunClock;
use crate::exec::{injected, panic_message, EngineError};
use crate::fault::{site, FaultPlan};

/// Target wall-clock per morsel, in microseconds. Auto-tuning aims every
/// dispensed range at roughly this much work so dispatch overhead stays
/// ≤ ~0.1% while stealing granularity stays interactive.
pub const MORSEL_TARGET_US: u64 = 1_000;

/// Morsel-size clamp, in tuples (`Limits::morsel_tuples`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselCfg {
    /// Smallest range the dispenser hands out; also the calibration size.
    pub min: usize,
    /// Largest range the dispenser hands out, however cheap a tuple is.
    pub max: usize,
}

impl Default for MorselCfg {
    fn default() -> Self {
        MorselCfg {
            min: 16,
            max: 65_536,
        }
    }
}

impl MorselCfg {
    fn normalized(self) -> MorselCfg {
        let min = self.min.max(1);
        MorselCfg {
            min,
            max: self.max.max(min),
        }
    }
}

/// A shared parallel section job: takes the participant index.
type Job = Arc<dyn Fn(usize) + Send + Sync>;

/// The job board workers watch: a sequence number bumps on every new
/// section, so each worker runs each job at most once.
struct Board {
    seq: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct PoolShared {
    board: Mutex<Board>,
    bell: Condvar,
}

struct PoolCore {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

/// Locks a mutex, surviving poisoning: the executor's own bookkeeping
/// never leaves shared state half-updated (panics are contained per
/// morsel), so a poisoned lock just means some unrelated morsel panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The per-run worker pool: spawned lazily on the first parallel-worthy
/// section of a run, reused by every later section, joined on drop at the
/// end of the run. Engine runs that never meet a parallel-worthy operator
/// never spawn a thread.
pub struct RunPool {
    workers: usize,
    core: OnceLock<PoolCore>,
}

impl RunPool {
    /// A pool for `threads`-way sections: the calling thread participates,
    /// so `threads - 1` workers back it.
    pub fn new(threads: usize) -> Self {
        RunPool {
            workers: threads.max(1) - 1,
            core: OnceLock::new(),
        }
    }

    /// Spawns the workers on first use. `None` when this pool cannot make
    /// a section parallel (single-threaded, or every spawn failed —
    /// spawn failures degrade to fewer workers, never to an error).
    fn engage(&self) -> Option<&PoolCore> {
        if self.workers == 0 {
            return None;
        }
        let core = self.core.get_or_init(|| {
            let shared = Arc::new(PoolShared {
                board: Mutex::new(Board {
                    seq: 0,
                    job: None,
                    shutdown: false,
                }),
                bell: Condvar::new(),
            });
            let handles = (1..=self.workers)
                .filter_map(|p| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("iflex-par-{p}"))
                        .spawn(move || worker_loop(&shared, p))
                        .ok()
                })
                .collect();
            PoolCore { shared, handles }
        });
        if core.handles.is_empty() {
            None
        } else {
            Some(core)
        }
    }
}

impl Drop for RunPool {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            {
                let mut board = lock(&core.shared.board);
                board.shutdown = true;
                board.job = None;
            }
            core.shared.bell.notify_all();
            for h in core.handles {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(shared: &PoolShared, p: usize) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut board = lock(&shared.board);
            loop {
                if board.shutdown {
                    return;
                }
                if board.seq != last_seq {
                    break;
                }
                board = shared.bell.wait(board).unwrap_or_else(|e| e.into_inner());
            }
            last_seq = board.seq;
            board.job.clone()
        };
        if let Some(job) = job {
            job(p);
        }
    }
}

/// Everything a parallel section needs from the engine. Owned handles
/// (not borrows), because pool workers outlive any one operator's stack
/// frame.
pub struct SectionCtx<'a> {
    /// The run's pool; `None` forces the serial path.
    pub pool: Option<&'a RunPool>,
    /// Morsel-size clamp (`Limits::morsel_tuples`).
    pub cfg: MorselCfg,
    /// Probed at every morsel boundary; once tripped, remaining morsels
    /// record the degradation cause without running.
    pub clock: Option<Arc<RunClock>>,
    /// Fault plan for the `engine.par_steal` site, probed when a stolen
    /// morsel starts.
    pub fault: Option<FaultPlan>,
    /// Enabled-tracer context: each morsel records a `morsel<start>` span
    /// under this parent, closed by a drop guard.
    pub trace: Option<(Tracer, SpanId)>,
}

impl<'a> SectionCtx<'a> {
    /// A bare context (tests; production uses `Engine::section_ctx`).
    pub fn new(pool: Option<&'a RunPool>, cfg: MorselCfg) -> Self {
        SectionCtx {
            pool,
            cfg,
            clock: None,
            fault: None,
            trace: None,
        }
    }
}

/// Per-section scheduler statistics.
#[derive(Debug, Clone, Default)]
pub struct SectionStats {
    /// Per-participant busy wall-clock, in microseconds. A panicked
    /// participant still reports time burned up to the panic.
    pub busy_micros: Vec<u64>,
    /// Whether pool workers could have participated (false for the serial
    /// fallback on small inputs, missing pool, or when calibration left
    /// less than one morsel of work).
    pub went_parallel: bool,
    /// Ranges dispensed, including the calibration morsel.
    pub morsels: u64,
    /// Morsels taken from another participant's segment.
    pub steals: u64,
    /// Wall-clock spent claiming/stealing ranges, in microseconds.
    pub dispense_us: u64,
    /// The auto-tuned morsel size used after calibration.
    pub morsel_size: usize,
}

/// The outcome of one [`scatter`] call: parts keyed by morsel start
/// index, already sorted.
pub struct MorselRun<R> {
    /// `(start_index, result)` per morsel, in start-index order.
    pub parts: Vec<(usize, Result<Vec<R>, EngineError>)>,
    /// Scheduler statistics for this section.
    pub stats: SectionStats,
}

impl<R> MorselRun<R> {
    /// Concatenates morsel outputs in index order, surfacing the error
    /// with the lowest start index — the same error a serial scan would
    /// return first.
    pub fn merge(self) -> Result<Vec<R>, EngineError> {
        let mut out = Vec::new();
        for (_, part) in self.parts {
            out.extend(part?);
        }
        Ok(out)
    }
}

/// Packs a segment's `(cursor, end)` into one CAS-able word. Index-range
/// counts fit u32 by a wide margin (`Limits::max_result_tuples` caps
/// materialization in the low millions).
fn pack(cursor: u32, end: u32) -> u64 {
    (u64::from(cursor) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Panic-safe morsel span: begun when the morsel starts, ended on drop so
/// the journal stays well-nested even when the morsel panics and unwinds.
struct MorselSpan<'a> {
    tracer: &'a Tracer,
    id: SpanId,
    start_idx: u64,
    len: u64,
    stolen: bool,
    t0: Instant,
}

impl<'a> MorselSpan<'a> {
    fn begin(trace: Option<&'a (Tracer, SpanId)>, range: &Range<usize>, stolen: bool) -> Option<Self> {
        trace.map(|(tracer, parent)| MorselSpan {
            id: tracer.begin(*parent, SpanKind::Morsel, &format!("morsel{}", range.start)),
            tracer,
            start_idx: range.start as u64,
            len: range.len() as u64,
            stolen,
            t0: Instant::now(),
        })
    }
}

impl Drop for MorselSpan<'_> {
    fn drop(&mut self) {
        self.tracer.end_with(
            self.id,
            &[
                ("start", self.start_idx),
                ("len", self.len),
                ("stolen", u64::from(self.stolen)),
                ("busy_us", self.t0.elapsed().as_micros() as u64),
            ],
        );
    }
}

/// A morsel body: the caller's per-range closure, boxed for the section.
type MorselFn<R> = Box<dyn Fn(Range<usize>) -> Result<Vec<R>, EngineError> + Send + Sync>;
/// The fold buffer: completed morsels as `(start index, result)` parts.
type Parts<R> = Vec<(usize, Result<Vec<R>, EngineError>)>;

/// One live parallel section: the dispenser, the fold buffer, and the
/// engine handles every participant shares.
struct Section<R> {
    run: MorselFn<R>,
    /// Per-participant packed `(cursor << 32) | end` segments. Owners
    /// claim from the front, thieves from the back; one CAS word per
    /// segment serializes both.
    segs: Vec<AtomicU64>,
    morsel: u32,
    /// Items not yet completed; the participant that drives it to zero
    /// rings the bell.
    pending: AtomicUsize,
    parts: Mutex<Parts<R>>,
    busy_us: Vec<AtomicU64>,
    dispense_ns: AtomicU64,
    morsels: AtomicU64,
    steals: AtomicU64,
    done: Mutex<bool>,
    bell: Condvar,
    clock: Option<Arc<RunClock>>,
    fault: Option<FaultPlan>,
    trace: Option<(Tracer, SpanId)>,
}

impl<R: Send> Section<R> {
    /// Participant `p`'s drain loop: claim own morsels from the front,
    /// then steal from the fullest other segment until nothing is left.
    fn work(&self, p: usize) {
        loop {
            let t0 = Instant::now();
            let claim = self.claim(p);
            self.dispense_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let Some((range, stolen)) = claim else { return };
            self.run_morsel(p, range, stolen);
        }
    }

    fn claim(&self, p: usize) -> Option<(Range<usize>, bool)> {
        if let Some(r) = self.claim_front(p) {
            return Some((r, false));
        }
        loop {
            let victim = self
                .segs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != p)
                .map(|(i, s)| {
                    let (c, e) = unpack(s.load(Ordering::Acquire));
                    (e.saturating_sub(c), i)
                })
                .max()?;
            let (remaining, v) = victim;
            if remaining == 0 {
                return None;
            }
            // Lost races rescan: another thief may have drained the victim.
            if let Some(r) = self.claim_back(v) {
                return Some((r, true));
            }
        }
    }

    fn claim_front(&self, p: usize) -> Option<Range<usize>> {
        let seg = &self.segs[p];
        let mut cur = seg.load(Ordering::Acquire);
        loop {
            let (c, e) = unpack(cur);
            if c >= e {
                return None;
            }
            let step = self.morsel.min(e - c);
            match seg.compare_exchange_weak(
                cur,
                pack(c + step, e),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(c as usize..(c + step) as usize),
                Err(v) => cur = v,
            }
        }
    }

    fn claim_back(&self, v: usize) -> Option<Range<usize>> {
        let seg = &self.segs[v];
        let mut cur = seg.load(Ordering::Acquire);
        loop {
            let (c, e) = unpack(cur);
            if c >= e {
                return None;
            }
            let step = self.morsel.min(e - c);
            let ne = e - step;
            match seg.compare_exchange_weak(cur, pack(c, ne), Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(ne as usize..e as usize),
                Err(x) => cur = x,
            }
        }
    }

    fn run_morsel(&self, p: usize, range: Range<usize>, stolen: bool) {
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _span = MorselSpan::begin(self.trace.as_ref(), &range, stolen);
            if stolen {
                if let Some(plan) = &self.fault {
                    if let Some(f) = plan.hit(site::PAR_STEAL) {
                        return Err(injected(f));
                    }
                }
            }
            if let Some(clock) = &self.clock {
                clock.check().map_err(EngineError::from)?;
            }
            (self.run)(range.clone())
        }));
        let result =
            result.unwrap_or_else(|e| Err(EngineError::RulePanic(panic_message(e.as_ref()))));
        // Recorded outside the containment, so a panicked morsel still
        // contributes its time-to-panic to the imbalance metrics.
        self.busy_us[p].fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.morsels.fetch_add(1, Ordering::Relaxed);
        lock(&self.parts).push((range.start, result));
        let n = range.len();
        if self.pending.fetch_sub(n, Ordering::AcqRel) == n {
            *lock(&self.done) = true;
            self.bell.notify_all();
        }
    }
}

/// Runs `run` over `0..n` serially as a single part (one morsel span, no
/// containment — a panic propagates to the rule boundary exactly like
/// pre-parallel evaluation).
fn run_serial<R: Send>(
    ctx: &SectionCtx<'_>,
    n: usize,
    run: impl Fn(Range<usize>) -> Result<Vec<R>, EngineError>,
) -> MorselRun<R> {
    let t0 = Instant::now();
    let result = {
        let _span = MorselSpan::begin(ctx.trace.as_ref(), &(0..n), false);
        run(0..n)
    };
    MorselRun {
        parts: vec![(0, result)],
        stats: SectionStats {
            busy_micros: vec![t0.elapsed().as_micros() as u64],
            went_parallel: false,
            morsels: 1,
            steals: 0,
            dispense_us: 0,
            morsel_size: n,
        },
    }
}

/// Runs `run` over index ranges covering `0..n`, morsel-driven with work
/// stealing when the section's pool has workers and the input is big
/// enough to pay for them; serially otherwise.
///
/// The closure must be a *pure per-index map*: `run(a..b)` followed by
/// `run(b..c)` concatenated must equal `run(a..c)`. All operator call
/// sites satisfy this (per-tuple transforms over immutable snapshots).
pub fn scatter<R: Send + 'static>(
    ctx: &SectionCtx<'_>,
    n: usize,
    run: impl Fn(Range<usize>) -> Result<Vec<R>, EngineError> + Send + Sync + 'static,
) -> MorselRun<R> {
    debug_assert!(n < u32::MAX as usize, "index ranges are packed into u32");
    let cfg = ctx.cfg.normalized();
    let core = match ctx.pool {
        Some(pool) if n > 2 * cfg.min => match pool.engage() {
            Some(core) => core,
            None => return run_serial(ctx, n, run),
        },
        _ => return run_serial(ctx, n, run),
    };

    // Calibration: the caller's thread runs the first `cfg.min` items and
    // the measured cost sizes every later morsel to ~MORSEL_TARGET_US.
    let calib = cfg.min.min(n);
    let t0 = Instant::now();
    let calib_result = {
        let _span = MorselSpan::begin(ctx.trace.as_ref(), &(0..calib), false);
        run(0..calib)
    };
    let calib_elapsed = t0.elapsed().as_micros() as u64;
    let per_morsel = (calib as u64 * MORSEL_TARGET_US) / calib_elapsed.max(1);
    let morsel = per_morsel.clamp(cfg.min as u64, cfg.max as u64) as u32;

    let rest = n - calib;
    if rest <= morsel as usize {
        // Less than one morsel left: cheaper to finish on this thread than
        // to wake the pool.
        let t1 = Instant::now();
        let rest_result = {
            let _span = MorselSpan::begin(ctx.trace.as_ref(), &(calib..n), false);
            run(calib..n)
        };
        return MorselRun {
            parts: vec![(0, calib_result), (calib, rest_result)],
            stats: SectionStats {
                busy_micros: vec![calib_elapsed + t1.elapsed().as_micros() as u64],
                went_parallel: false,
                morsels: 2,
                steals: 0,
                dispense_us: 0,
                morsel_size: morsel as usize,
            },
        };
    }

    // Segment the remainder evenly over the participants (this thread is
    // participant 0); the dispenser and stealing erase any imbalance.
    let p_total = core.handles.len() + 1;
    let seg_len = rest.div_ceil(p_total);
    let segs: Vec<AtomicU64> = (0..p_total)
        .map(|i| {
            let s = (calib + i * seg_len).min(n);
            let e = (s + seg_len).min(n);
            AtomicU64::new(pack(s as u32, e as u32))
        })
        .collect();
    let section = Arc::new(Section {
        run: Box::new(run),
        segs,
        morsel,
        pending: AtomicUsize::new(rest),
        parts: Mutex::new(vec![(0, calib_result)]),
        busy_us: (0..p_total).map(|_| AtomicU64::new(0)).collect(),
        dispense_ns: AtomicU64::new(0),
        morsels: AtomicU64::new(1),
        steals: AtomicU64::new(0),
        done: Mutex::new(false),
        bell: Condvar::new(),
        clock: ctx.clock.clone(),
        fault: ctx.fault.clone(),
        trace: ctx.trace.clone(),
    });
    section.busy_us[0].store(calib_elapsed, Ordering::Relaxed);

    let job: Job = {
        let s = Arc::clone(&section);
        Arc::new(move |p| s.work(p))
    };
    {
        let mut board = lock(&core.shared.board);
        board.seq += 1;
        board.job = Some(job);
    }
    core.shared.bell.notify_all();

    section.work(0);
    {
        let mut done = lock(&section.done);
        while !*done {
            done = section.bell.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
    // Unpin the section from the board so it drops with the run, not at
    // the next section.
    lock(&core.shared.board).job = None;

    let mut parts = std::mem::take(&mut *lock(&section.parts));
    parts.sort_by_key(|&(start, _)| start);
    let stats = SectionStats {
        busy_micros: section
            .busy_us
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        went_parallel: true,
        morsels: section.morsels.load(Ordering::Relaxed),
        steals: section.steals.load(Ordering::Relaxed),
        dispense_us: section.dispense_ns.load(Ordering::Relaxed) / 1_000,
        morsel_size: morsel as usize,
    };
    MorselRun { parts, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, Trigger};
    use std::time::Duration;

    fn tiny() -> MorselCfg {
        MorselCfg { min: 2, max: 4 }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let run = |items: Vec<u64>| {
            move |r: Range<usize>| Ok(items[r].iter().map(|x| x * 3 + 1).collect())
        };
        let serial = scatter(&SectionCtx::new(None, tiny()), items.len(), run(items.clone()))
            .merge()
            .unwrap();
        for threads in [2, 3, 8] {
            let pool = RunPool::new(threads);
            let ctx = SectionCtx::new(Some(&pool), MorselCfg { min: 8, max: 64 });
            let par = scatter(&ctx, items.len(), run(items.clone()));
            assert!(par.stats.went_parallel);
            assert!(par.stats.morsels > 1);
            assert_eq!(par.merge().unwrap(), serial);
        }
    }

    #[test]
    fn small_inputs_stay_serial() {
        let pool = RunPool::new(8);
        let ctx = SectionCtx::new(Some(&pool), MorselCfg::default());
        let out = scatter(&ctx, 3, |r: Range<usize>| Ok(r.collect::<Vec<_>>()));
        assert!(!out.stats.went_parallel);
        assert_eq!(out.parts.len(), 1);
        assert_eq!(out.merge().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn first_error_in_index_order_wins() {
        let pool = RunPool::new(4);
        let ctx = SectionCtx::new(Some(&pool), tiny());
        let run = |r: Range<usize>| -> Result<Vec<usize>, EngineError> {
            // Every morsel errors, naming its first item; the merged error
            // must be the lowest-index one.
            Err(EngineError::TooLarge(format!("item {}", r.start)))
        };
        match scatter(&ctx, 64, run).merge() {
            Err(EngineError::TooLarge(msg)) => assert_eq!(msg, "item 0"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn worker_panic_becomes_rule_panic() {
        let pool = RunPool::new(4);
        let ctx = SectionCtx::new(Some(&pool), tiny());
        let out = scatter(&ctx, 64, |r: Range<usize>| {
            if r.contains(&63) {
                panic!("worker exploded");
            }
            Ok(r.collect::<Vec<_>>())
        });
        assert!(out.stats.went_parallel);
        // Satellite: the panicking participant still reports busy time.
        assert!(out.stats.busy_micros.iter().any(|&us| us > 0));
        match out.merge() {
            Err(EngineError::RulePanic(msg)) => assert!(msg.contains("worker exploded")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// Forces a steal deterministically: participant 0's segment is free,
    /// the workers' segments sleep per item, so the caller drains its own
    /// segment and then must steal from a sleeping victim's back.
    fn stealing_section(
        n: usize,
        fault: Option<FaultPlan>,
    ) -> MorselRun<usize> {
        let pool = RunPool::new(2);
        let mut ctx = SectionCtx::new(Some(&pool), MorselCfg { min: 2, max: 2 });
        ctx.fault = fault;
        scatter(&ctx, n, move |r: Range<usize>| {
            // The second half (the worker's segment) is slow.
            if r.start >= n / 2 {
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(r.collect::<Vec<_>>())
        })
    }

    #[test]
    fn fast_participant_steals_from_slow_victim() {
        let out = stealing_section(16, None);
        assert!(out.stats.went_parallel);
        assert!(out.stats.steals > 0, "caller must steal from the sleeper");
        assert_eq!(out.merge().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn panic_mid_steal_is_contained_with_busy_time() {
        let plan = FaultPlan::disarmed();
        plan.arm(
            site::PAR_STEAL,
            Trigger::Nth(0),
            Fault::Panic("mid-steal".into()),
            0,
        );
        let out = stealing_section(16, Some(plan.clone()));
        assert!(out.stats.went_parallel);
        assert!(out.stats.steals > 0);
        assert_eq!(plan.fired_count(site::PAR_STEAL), 1);
        // Satellite: the participant that panicked mid-steal (the caller,
        // participant 0 — its segment is the fast half) still reports the
        // busy time it burned up to the panic.
        assert!(out.stats.busy_micros[0] > 0);
        match out.merge() {
            Err(EngineError::RulePanic(msg)) => assert!(msg.contains("mid-steal")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tripped_clock_drains_remaining_morsels() {
        let budget = crate::budget::RunBudget::with_deadline(Duration::from_millis(0));
        let clock = Arc::new(budget.start());
        std::thread::sleep(Duration::from_millis(2));
        let pool = RunPool::new(2);
        let mut ctx = SectionCtx::new(Some(&pool), tiny());
        ctx.clock = Some(clock);
        let out = scatter(&ctx, 64, |r: Range<usize>| Ok(r.collect::<Vec<_>>()));
        match out.merge() {
            // Calibration runs before the first boundary check, so the
            // surfaced error is the deadline from the first real morsel.
            Err(EngineError::Deadline) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
