//! Incremental re-execution cache: per-rule result reuse with
//! **dependency-cone invalidation** (DESIGN.md §9).
//!
//! The §5.2 reuse optimization re-executes only "the parts of the plan
//! that may possibly have changed" between iterations. This module makes
//! that precise and bounded:
//!
//! * every compiled rule gets a **fingerprint**
//!   ([`crate::plan::rule_fingerprint`]) hashing the rendered rule — which,
//!   after unfolding, already inlines the whole description-rule chain —
//!   plus the signatures of every feature procedure the rule calls;
//! * every intermediate relation gets a **version**: a hash of its rules'
//!   fingerprints and the versions of the relations those rules read;
//! * each rule's output [`CompactTable`] is cached under
//!   `(relation, sample, fingerprint, input versions)`, so a refinement
//!   misses exactly on the refined rule and its downstream **dependency
//!   cone** while every upstream entry keeps hitting;
//! * [`IncrCache::begin_run`] diffs the incoming fingerprints against the
//!   previous run's and **evicts** entries stranded in the changed cone —
//!   the memory-reclamation half of cone invalidation the old string-keyed
//!   cache never did (it leaked one entry per refinement per iteration).
//!
//! Eviction is deliberately lazy: simulation probes interleave refined
//! candidate programs with the base program on the *same* cache (the
//! serial probe path runs on the live engine, the parallel path folds
//! snapshot caches back in). Evicting a stale-looking entry immediately
//! would thrash the base program's entries once per probe, so cone
//! entries get a grace of [`IncrCache::keep_gens`] runs before they are
//! reclaimed, and a capacity bound evicts least-recently-used entries
//! beyond [`IncrCache::max_entries`].
//!
//! Correctness note: a degraded rule's widened stand-in is **never**
//! inserted here (the next run must retry the rule exactly), and entries
//! are pure functions of their key — absorbing a snapshot's entries via
//! first-writer-wins cannot change results.
//!
//! Fingerprint-stability rule (DESIGN.md §11): fingerprints hash the
//! **pre-optimization** unfolded rule — the logical-plan optimizer runs
//! *after* fingerprinting (`Engine::maybe_optimize` in `exec.rs`), and
//! its rewrites are byte-exact, so cache identities are
//! optimizer-invariant and entries stay valid and shareable whether a
//! run optimizes or not. Any future pass that is only
//! worlds-equivalent (not byte-exact) must salt the fingerprint
//! instead. The engine warns once when `use_optimizer` is off while
//! `use_incremental` is on: entries remain *valid*, but warm entries
//! may have been produced by optimized runs, which muddies ablation
//! timing.

use iflex_ctable::{ColumnarTable, CompactTable};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex, Weak};

/// Cache key: relation name, sample key, rule fingerprint, input-version
/// hash. The relation name is first so one relation's entries are a
/// contiguous range — cone eviction walks only the affected relations.
type Key = (String, String, u64, u64);

#[derive(Debug, Clone)]
struct Entry {
    table: Arc<CompactTable>,
    /// Extraction volume the rule's evaluation reported; re-reported on
    /// hits so convergence monitoring sees identical signals.
    volume: usize,
    /// Generation of the last hit (or the insert), for grace/LRU eviction.
    used_gen: u64,
}

/// The incremental re-execution cache. One per [`crate::Engine`];
/// snapshots clone it and fold results back with
/// [`crate::Engine::absorb_cache`].
#[derive(Debug, Clone)]
pub struct IncrCache {
    entries: BTreeMap<Key, Entry>,
    /// Per-relation sorted rule fingerprints seen by the previous
    /// [`IncrCache::begin_run`]; the diff against the current run's
    /// fingerprints is the set of *changed* relations.
    last_fps: BTreeMap<String, Vec<u64>>,
    /// Run counter; bumped by every [`IncrCache::begin_run`].
    gen: u64,
    /// How many runs a cone-stranded entry survives before eviction.
    keep_gens: u64,
    /// Hard cap on cached entries; beyond it, least-recently-used entries
    /// are evicted regardless of cone membership.
    max_entries: usize,
}

impl Default for IncrCache {
    fn default() -> Self {
        Self::with_limits(64, 4096)
    }
}

impl IncrCache {
    /// An empty cache with the default grace (64 runs — comfortably more
    /// than one simulation phase's probe count) and capacity (4096
    /// entries).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with explicit eviction limits (tests use
    /// `keep_gens = 0` to force immediate cone eviction).
    pub fn with_limits(keep_gens: u64, max_entries: usize) -> Self {
        IncrCache {
            entries: BTreeMap::new(),
            last_fps: BTreeMap::new(),
            gen: 0,
            keep_gens,
            max_entries: max_entries.max(1),
        }
    }

    /// Number of cached rule results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (registry mutations and session fallback retries
    /// call this through [`crate::Engine::clear_cache`]).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.last_fps.clear();
    }

    /// Starts a run: diffs `fps` (per-relation sorted rule fingerprints)
    /// against the previous run's, closes the changed set downstream over
    /// `deps` (relation → intensional relations its rules read) into the
    /// **dependency cone**, and evicts entries stranded in that cone —
    /// entries whose fingerprint no longer belongs to the current program
    /// and whose last hit is older than the grace window. Also enforces
    /// the capacity bound. Returns how many entries were evicted (the
    /// `engine.incr.invalidations` signal).
    pub fn begin_run(
        &mut self,
        fps: &BTreeMap<String, Vec<u64>>,
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> usize {
        self.gen += 1;
        let mut changed: BTreeSet<&str> = fps
            .iter()
            .filter(|(rel, cur)| self.last_fps.get(*rel) != Some(cur))
            .map(|(rel, _)| rel.as_str())
            .collect();
        // Relations that vanished from the program changed too.
        changed.extend(
            self.last_fps
                .keys()
                .filter(|r| !fps.contains_key(*r))
                .map(String::as_str),
        );
        let cone = downstream_cone(&changed, deps);
        let gen = self.gen;
        let keep = self.keep_gens;
        let before = self.entries.len();
        // Sweep. An entry is *untouched* by this change when its relation
        // is outside the cone and its fingerprint is still part of the
        // current program — such entries are kept unconditionally (their
        // keys can still hit). Everything else — the changed relation's
        // own stranded fingerprints, downstream cone entries whose input
        // versions just went stale, fingerprints stranded by an earlier
        // alternation, vanished relations — is logically invalidated and
        // reclaimed once unused past the grace window.
        self.entries.retain(|(rel, _, fp, _), e| {
            let current = fps.get(rel).is_some_and(|v| v.binary_search(fp).is_ok());
            if current && !cone.contains(rel.as_str()) {
                return true;
            }
            gen.saturating_sub(e.used_gen) <= keep
        });
        let mut evicted = before - self.entries.len();
        evicted += self.enforce_capacity();
        self.last_fps = fps.clone();
        evicted
    }

    /// Looks up a rule result, refreshing its recency on a hit.
    pub fn get(
        &mut self,
        rel: &str,
        sample: &str,
        fp: u64,
        inputs: u64,
    ) -> Option<(Arc<CompactTable>, usize)> {
        let key = (rel.to_string(), sample.to_string(), fp, inputs);
        let gen = self.gen;
        self.entries.get_mut(&key).map(|e| {
            e.used_gen = gen;
            (Arc::clone(&e.table), e.volume)
        })
    }

    /// Caches a rule result. Callers must never insert degraded
    /// (widened) results — see the module docs.
    pub fn insert(
        &mut self,
        rel: &str,
        sample: &str,
        fp: u64,
        inputs: u64,
        table: Arc<CompactTable>,
        volume: usize,
    ) {
        self.entries.insert(
            (rel.to_string(), sample.to_string(), fp, inputs),
            Entry {
                table,
                volume,
                used_gen: self.gen,
            },
        );
        self.enforce_capacity();
    }

    /// Folds another cache's entries into this one; existing entries win
    /// (both caches computed the same pure results). The engine gates
    /// this on epoch equality.
    pub fn absorb(&mut self, other: IncrCache) {
        for (k, v) in other.entries {
            self.entries.entry(k).or_insert(v);
        }
        self.enforce_capacity();
    }

    /// Evicts least-recently-used entries beyond the capacity bound;
    /// returns how many were dropped.
    fn enforce_capacity(&mut self) -> usize {
        let mut evicted = 0;
        while self.entries.len() > self.max_entries {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used_gen)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// Shares one columnar conversion per row table across operators, runs,
/// and iterations (DESIGN.md §14). Keyed by the row table's `Arc`
/// allocation: the [`IncrCache`]'s entries — and the engine's extensional
/// tables — hand out the *same* `Arc<CompactTable>` on every hit, so a
/// warm incremental entry carries its columnar form along behind the same
/// sharing, converted at most once. Values hold only a [`Weak`] row
/// handle: the share never extends a table's lifetime, and stale slots
/// (dead weak, or a reused allocation address) are detected on lookup and
/// swept opportunistically.
///
/// Conversion is **adaptive** ([`ColumnarShare::get_adaptive`]): an
/// allocation is only converted the *second* time it is seen. Stable
/// tables (extensional scans, warm cache entries) pay one conversion and
/// amortize it over every later pass; per-iteration scratch tables —
/// rebuilt at a fresh address every run — are never converted, so the
/// columnar arm never pays an O(rows × cols) conversion it cannot
/// amortize. Callers fall back to the row core on first sight, which is
/// byte-identical by the §14 equivalence contract.
#[derive(Debug, Default)]
pub struct ColumnarShare {
    map: Mutex<HashMap<usize, ShareSlot>>,
}

/// One share slot: the weak row-table handle that validates the address
/// key, plus the conversion once the allocation earned it.
#[derive(Debug)]
enum ShareSlot {
    /// Allocation noted once — not converted yet.
    Seen(Weak<CompactTable>),
    /// Allocation seen again — conversion shared from here on.
    Conv(Weak<CompactTable>, Arc<ColumnarTable>),
}

impl ShareSlot {
    fn weak(&self) -> &Weak<CompactTable> {
        match self {
            ShareSlot::Seen(w) | ShareSlot::Conv(w, _) => w,
        }
    }
}

/// Sweep threshold: once the share holds this many slots, dead weaks are
/// collected before the next insert.
const SHARE_SWEEP_AT: usize = 256;

impl ColumnarShare {
    /// An empty share.
    pub fn new() -> Self {
        Self::default()
    }

    /// The columnar form of `t` under the second-sight policy: `None` on
    /// first sight of this allocation (noted; the caller should run the
    /// row core), the shared conversion from the second sight on. An
    /// address reused by a *different* table is detected via the stored
    /// weak handle (`upgrade` + pointer equality) and demoted back to
    /// first sight.
    pub fn get_adaptive(&self, t: &Arc<CompactTable>) -> Option<Arc<ColumnarTable>> {
        let key = Arc::as_ptr(t) as usize;
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        match map.get(&key) {
            Some(slot) if slot.weak().upgrade().is_some_and(|l| Arc::ptr_eq(&l, t)) => {
                if let ShareSlot::Conv(_, col) = slot {
                    return Some(Arc::clone(col));
                }
                let col = Arc::new(ColumnarTable::from_rows(t));
                map.insert(key, ShareSlot::Conv(Arc::downgrade(t), Arc::clone(&col)));
                Some(col)
            }
            _ => {
                if map.len() >= SHARE_SWEEP_AT {
                    map.retain(|_, s| s.weak().strong_count() > 0);
                }
                map.insert(key, ShareSlot::Seen(Arc::downgrade(t)));
                None
            }
        }
    }

    /// The columnar form of `t`, converting immediately regardless of the
    /// second-sight policy. For callers that know the table is stable.
    pub fn get_or_convert(&self, t: &Arc<CompactTable>) -> Arc<ColumnarTable> {
        let key = Arc::as_ptr(t) as usize;
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(ShareSlot::Conv(weak, col)) = map.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, t) {
                    return Arc::clone(col);
                }
            }
        }
        let col = Arc::new(ColumnarTable::from_rows(t));
        if map.len() >= SHARE_SWEEP_AT {
            map.retain(|_, s| s.weak().strong_count() > 0);
        }
        map.insert(key, ShareSlot::Conv(Arc::downgrade(t), Arc::clone(&col)));
        col
    }

    /// Conversions currently held (dead weaks included until the next
    /// sweep; first-sight markers not counted).
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .filter(|s| matches!(s, ShareSlot::Conv(..)))
            .count()
    }

    /// True when no conversion is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached conversion (paired with
    /// [`IncrCache::clear`] in `Engine::clear_cache`).
    pub fn clear(&self) {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// The downstream dependency cone: `changed` plus every relation that
/// (transitively) reads a changed relation.
fn downstream_cone<'a>(
    changed: &BTreeSet<&'a str>,
    deps: &'a BTreeMap<String, BTreeSet<String>>,
) -> BTreeSet<&'a str> {
    let mut cone: BTreeSet<&str> = changed.clone();
    loop {
        let mut grew = false;
        for (rel, reads) in deps {
            if !cone.contains(rel.as_str()) && reads.iter().any(|d| cone.contains(d.as_str())) {
                cone.insert(rel.as_str());
                grew = true;
            }
        }
        if !grew {
            return cone;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<CompactTable> {
        Arc::new(CompactTable::new(vec!["x".to_string()]))
    }

    fn fps(pairs: &[(&str, &[u64])]) -> BTreeMap<String, Vec<u64>> {
        pairs
            .iter()
            .map(|(rel, v)| (rel.to_string(), v.to_vec()))
            .collect()
    }

    fn deps(pairs: &[(&str, &[&str])]) -> BTreeMap<String, BTreeSet<String>> {
        pairs
            .iter()
            .map(|(rel, ds)| {
                (
                    rel.to_string(),
                    ds.iter().map(|d| d.to_string()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn hit_and_miss() {
        let mut c = IncrCache::new();
        assert!(c.get("q", "full", 1, 2).is_none());
        c.insert("q", "full", 1, 2, table(), 7);
        let (t, vol) = c.get("q", "full", 1, 2).expect("hit");
        assert_eq!(t.len(), 0);
        assert_eq!(vol, 7);
        assert!(c.get("q", "full", 1, 3).is_none(), "input version differs");
        assert!(c.get("q", "s", 1, 2).is_none(), "sample differs");
    }

    #[test]
    fn cone_eviction_spares_upstream() {
        // p <- (ext), q reads p, r reads q, s independent.
        let d = deps(&[("p", &[]), ("q", &["p"]), ("r", &["q"]), ("s", &[])]);
        let mut c = IncrCache::with_limits(0, 64);
        c.begin_run(&fps(&[("p", &[1]), ("q", &[2]), ("r", &[3]), ("s", &[4])]), &d);
        c.insert("p", "full", 1, 0, table(), 0);
        c.insert("q", "full", 2, 10, table(), 0);
        c.insert("r", "full", 3, 20, table(), 0);
        c.insert("s", "full", 4, 0, table(), 0);
        // q's rule changes: q and r are the cone; p and s survive.
        let evicted =
            c.begin_run(&fps(&[("p", &[1]), ("q", &[22]), ("r", &[3]), ("s", &[4])]), &d);
        assert_eq!(evicted, 2, "q's stranded entry and r's input-stale entry go");
        assert!(c.get("p", "full", 1, 0).is_some());
        assert!(c.get("s", "full", 4, 0).is_some());
        assert!(c.get("q", "full", 2, 10).is_none());
        assert!(c.get("r", "full", 3, 20).is_none());
    }

    #[test]
    fn grace_window_defers_eviction() {
        let d = deps(&[("q", &[])]);
        let mut c = IncrCache::with_limits(2, 64);
        c.begin_run(&fps(&[("q", &[1])]), &d);
        c.insert("q", "full", 1, 0, table(), 0);
        // Probe-style alternation: the refined program strands the base
        // entry, but it survives the grace window...
        assert_eq!(c.begin_run(&fps(&[("q", &[9])]), &d), 0);
        assert_eq!(c.begin_run(&fps(&[("q", &[1])]), &d), 0);
        assert!(c.get("q", "full", 1, 0).is_some(), "base entry still live");
        // ...until it goes unused past the grace (keep_gens = 2 runs).
        assert_eq!(c.begin_run(&fps(&[("q", &[9])]), &d), 0);
        assert_eq!(c.begin_run(&fps(&[("q", &[9])]), &d), 0);
        assert_eq!(c.begin_run(&fps(&[("q", &[9])]), &d), 1);
        assert!(c.get("q", "full", 1, 0).is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = IncrCache::with_limits(32, 2);
        c.insert("a", "full", 1, 0, table(), 0);
        c.insert("b", "full", 2, 0, table(), 0);
        let d = deps(&[]);
        c.begin_run(&fps(&[]), &d); // gen 1
        assert!(c.get("b", "full", 2, 0).is_some()); // refresh b
        c.insert("c", "full", 3, 0, table(), 0);
        assert_eq!(c.len(), 2);
        assert!(c.get("a", "full", 1, 0).is_none(), "oldest entry evicted");
        assert!(c.get("b", "full", 2, 0).is_some());
        assert!(c.get("c", "full", 3, 0).is_some());
    }

    #[test]
    fn absorb_keeps_existing_entries() {
        let mut base = IncrCache::new();
        base.insert("q", "full", 1, 0, table(), 5);
        let mut snap = base.clone();
        snap.insert("q", "full", 1, 0, table(), 99);
        snap.insert("r", "full", 2, 0, table(), 1);
        base.absorb(snap);
        assert_eq!(base.get("q", "full", 1, 0).expect("q").1, 5, "existing wins");
        assert_eq!(base.get("r", "full", 2, 0).expect("r").1, 1, "new folds in");
    }

    #[test]
    fn columnar_share_converts_once_per_allocation() {
        let share = ColumnarShare::new();
        let t = table();
        let a = share.get_or_convert(&t);
        let b = share.get_or_convert(&t);
        assert!(Arc::ptr_eq(&a, &b), "same allocation shares one conversion");
        assert_eq!(share.len(), 1);
        // A different allocation with identical contents converts anew.
        let t2 = table();
        let c = share.get_or_convert(&t2);
        assert!(!Arc::ptr_eq(&a, &c));
        share.clear();
        assert!(share.is_empty());
    }

    #[test]
    fn columnar_share_detects_reused_address() {
        let share = ColumnarShare::new();
        // Drop the table after conversion: its weak handle dies, so even
        // if a later allocation lands on the same address the share must
        // reconvert rather than serve the stale columnar form.
        let stale_key = {
            let t = table();
            share.get_or_convert(&t);
            Arc::as_ptr(&t) as usize
        };
        let mut fresh = Arc::new(CompactTable::new(vec!["y".to_string()]));
        // Best-effort: allocate until the address is reused or give up —
        // either way the lookup path below must not return a stale entry.
        for _ in 0..64 {
            if Arc::as_ptr(&fresh) as usize == stale_key {
                break;
            }
            fresh = Arc::new(CompactTable::new(vec!["y".to_string()]));
        }
        let col = share.get_or_convert(&fresh);
        assert_eq!(col.columns(), &["y".to_string()]);
    }

    #[test]
    fn columnar_share_adaptive_converts_on_second_sight() {
        let share = ColumnarShare::new();
        let t = table();
        // First sight: noted, not converted — the caller runs the row core.
        assert!(share.get_adaptive(&t).is_none());
        assert_eq!(share.len(), 0, "a first-sight marker is not a conversion");
        // Second sight of the same allocation: converted and shared.
        let a = share.get_adaptive(&t).expect("second sight converts");
        let b = share.get_adaptive(&t).expect("third sight serves the share");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(share.len(), 1);
        // A scratch allocation per "iteration" never reaches second sight.
        for _ in 0..4 {
            assert!(share.get_adaptive(&table()).is_none());
        }
        assert_eq!(share.len(), 1);
    }

    #[test]
    fn clear_forgets_history() {
        let d = deps(&[("q", &[])]);
        let mut c = IncrCache::with_limits(0, 64);
        c.begin_run(&fps(&[("q", &[1])]), &d);
        c.insert("q", "full", 1, 0, table(), 0);
        c.clear();
        assert!(c.is_empty());
        // After clear, the next begin_run sees a fresh history: nothing
        // to evict even though the fingerprints "changed".
        assert_eq!(c.begin_run(&fps(&[("q", &[2])]), &d), 0);
    }
}
