//! Shared memo cache for feature `Verify` / `Refine` results.
//!
//! Feature procedures are pure functions of `(span-or-value, feature,
//! arg)` over an immutable [`DocumentStore`], so their results can be
//! memoized across rules, iterations of the interactive loop, and the
//! assistant's simulation probes. The cache is sharded behind mutexes so
//! the parallel operators ([`crate::par`]) can share one instance, and
//! it is reference-counted so engine snapshots keep feeding the same
//! memo. Invalidation follows the rule cache: any mutation of the
//! feature registry clears it (see `Engine::features_mut`).
//!
//! Interplay with the morsel executor: which thread computes a tuple is
//! timing-dependent (a stolen morsel runs on the thief), so two runs may
//! populate shards in a different order and interleave hits and misses
//! differently. That is safe by construction — entries are pure values
//! keyed only by their inputs, an insert race just recomputes one value,
//! and a hit is byte-identical to a recompute — so the cache can never
//! break `par`'s serial-identity guarantee; only `feature_cache_hits` /
//! `feature_cache_misses` totals may drift between runs. Degraded
//! results are never inserted, so a morsel that failed mid-fault cannot
//! poison later runs.
//!
//! [`DocumentStore`]: iflex_text::DocumentStore

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use iflex_ctable::{Assignment, Cell, Value};
use iflex_features::FeatureArg;
use iflex_text::Span;

/// Shard count. Small power of two: enough to keep worker threads from
/// serializing on one lock without wasting memory on empty maps.
const SHARDS: usize = 16;

/// A fast, deterministic, process-stable hasher (the FxHash fold). The
/// memo is on the hot path of every feature call; SipHash's per-lookup
/// cost would eat the savings on cheap features. Shard choice and map
/// hashing only affect speed, never results.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

fn fx_hash<T: Hash>(t: &T) -> u64 {
    let mut h = FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

/// A hashable stand-in for [`FeatureArg`] (`f64` params are canonicalized
/// to their bit pattern; feature procedures are bit-pattern-pure).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgKey {
    /// Tri-state arg, by token.
    Tri(iflex_features::FeatureValue),
    /// Numeric arg, by IEEE-754 bits.
    Num(u64),
    /// String arg.
    Text(String),
}

impl From<&FeatureArg> for ArgKey {
    fn from(a: &FeatureArg) -> Self {
        match a {
            FeatureArg::Tri(v) => ArgKey::Tri(*v),
            FeatureArg::Num(n) => ArgKey::Num(n.to_bits()),
            FeatureArg::Text(s) => ArgKey::Text(s.clone()),
        }
    }
}

/// A hashable stand-in for [`Value`] (same `f64` canonicalization).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// A document span.
    Span(Span),
    /// A string constant.
    Str(String),
    /// A numeric constant, by IEEE-754 bits.
    Num(u64),
    /// A boolean constant.
    Bool(bool),
    /// Null.
    Null,
}

impl From<&Value> for ValueKey {
    fn from(v: &Value) -> Self {
        match v {
            Value::Span(s) => ValueKey::Span(*s),
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::Num(n) => ValueKey::Num(n.to_bits()),
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Null => ValueKey::Null,
        }
    }
}

/// Cache key: one entry per distinct feature invocation. The document is
/// implied by the span / value (spans carry their `DocId`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemoKey {
    /// `Refine(span, feature, arg)`.
    Refine {
        /// The refined span.
        span: Span,
        /// Feature name.
        feature: String,
        /// Constraint argument.
        arg: ArgKey,
    },
    /// `Verify(value, feature, arg)`.
    Verify {
        /// The verified value.
        value: ValueKey,
        /// Feature name.
        feature: String,
        /// Constraint argument.
        arg: ArgKey,
    },
}

/// Cached feature result. Refine vectors are `Arc`-shared: hits hand out
/// the same allocation to every rule and probe.
#[derive(Debug, Clone)]
pub enum MemoValue {
    /// A `Refine` result.
    Refined(Arc<Vec<Assignment>>),
    /// A `Verify` result.
    Verified(bool),
}

/// A borrowed feature-call key: hashes and compares against stored
/// [`MemoKey`]s **without allocating**, so a cache hit costs no clones.
#[derive(Debug, Clone, Copy)]
pub enum MemoQuery<'a> {
    /// `Refine(span, feature, arg)`.
    Refine {
        /// The refined span.
        span: Span,
        /// Feature name.
        feature: &'a str,
        /// Constraint argument.
        arg: &'a FeatureArg,
    },
    /// `Verify(value, feature, arg)`.
    Verify {
        /// The verified value.
        value: &'a Value,
        /// Feature name.
        feature: &'a str,
        /// Constraint argument.
        arg: &'a FeatureArg,
    },
}

fn hash_arg(h: &mut FxHasher, arg: &FeatureArg) {
    match arg {
        FeatureArg::Tri(v) => {
            h.write_u8(0);
            h.write_u8(*v as u8);
        }
        FeatureArg::Num(n) => {
            h.write_u8(1);
            h.write_u64(n.to_bits());
        }
        FeatureArg::Text(s) => {
            h.write_u8(2);
            h.write(s.as_bytes());
        }
    }
}

fn arg_matches(arg: &FeatureArg, key: &ArgKey) -> bool {
    match (arg, key) {
        (FeatureArg::Tri(a), ArgKey::Tri(b)) => a == b,
        (FeatureArg::Num(a), ArgKey::Num(b)) => a.to_bits() == *b,
        (FeatureArg::Text(a), ArgKey::Text(b)) => a == b,
        _ => false,
    }
}

fn value_matches(v: &Value, key: &ValueKey) -> bool {
    match (v, key) {
        (Value::Span(a), ValueKey::Span(b)) => a == b,
        (Value::Str(a), ValueKey::Str(b)) => a == b,
        (Value::Num(a), ValueKey::Num(b)) => a.to_bits() == *b,
        (Value::Bool(a), ValueKey::Bool(b)) => a == b,
        (Value::Null, ValueKey::Null) => true,
        _ => false,
    }
}

impl MemoQuery<'_> {
    fn hash64(&self) -> u64 {
        let mut h = FxHasher::default();
        match self {
            MemoQuery::Refine { span, feature, arg } => {
                h.write_u8(0);
                span.hash(&mut h);
                h.write(feature.as_bytes());
                hash_arg(&mut h, arg);
            }
            MemoQuery::Verify { value, feature, arg } => {
                h.write_u8(1);
                match value {
                    Value::Span(s) => {
                        h.write_u8(0);
                        s.hash(&mut h);
                    }
                    Value::Str(s) => {
                        h.write_u8(1);
                        h.write(s.as_bytes());
                    }
                    Value::Num(n) => {
                        h.write_u8(2);
                        h.write_u64(n.to_bits());
                    }
                    Value::Bool(b) => {
                        h.write_u8(3);
                        h.write_u8(u8::from(*b));
                    }
                    Value::Null => h.write_u8(4),
                }
                h.write(feature.as_bytes());
                hash_arg(&mut h, arg);
            }
        }
        h.finish()
    }

    fn matches(&self, key: &MemoKey) -> bool {
        match (self, key) {
            (
                MemoQuery::Refine { span, feature, arg },
                MemoKey::Refine {
                    span: ks,
                    feature: kf,
                    arg: ka,
                },
            ) => span == ks && *feature == kf.as_str() && arg_matches(arg, ka),
            (
                MemoQuery::Verify { value, feature, arg },
                MemoKey::Verify {
                    value: kv,
                    feature: kf,
                    arg: ka,
                },
            ) => *feature == kf.as_str() && value_matches(value, kv) && arg_matches(arg, ka),
            _ => false,
        }
    }

    /// The owned key this query corresponds to (built on the miss path
    /// only, where the feature computation dwarfs the clones).
    pub fn to_key(&self) -> MemoKey {
        match self {
            MemoQuery::Refine { span, feature, arg } => MemoKey::Refine {
                span: *span,
                feature: (*feature).to_string(),
                arg: ArgKey::from(*arg),
            },
            MemoQuery::Verify { value, feature, arg } => MemoKey::Verify {
                value: ValueKey::from(*value),
                feature: (*feature).to_string(),
                arg: ArgKey::from(*arg),
            },
        }
    }
}

/// The rendered identity of one constraint chain (`new` + priors), shared
/// by every cell-level lookup under one Constraint operator evaluation.
/// Rendering is done once per operator call, not once per tuple.
#[derive(Debug, Clone)]
pub struct CellCtx {
    text: Arc<str>,
    hash: u64,
}

impl CellCtx {
    /// Builds the chain identity from its rendered text. The rendering
    /// must be injective over (feature, arg) chains — see
    /// [`crate::constraint::chain_ctx`].
    pub fn new(text: String) -> Self {
        let hash = fx_hash(&text.as_bytes());
        CellCtx {
            text: text.into(),
            hash,
        }
    }
}

/// Per-feature call statistics, recorded on the memo's *miss* path (the
/// actual feature invocations). The optimizer's selectivity model
/// (`lplan::analyze`) reads these to rank constraints: a feature whose
/// `Verify` mostly returns false, or whose `Refine` shrinks its input a
/// lot, is *selective* and worth running early.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatStats {
    /// `Verify` invocations.
    pub verify_calls: u64,
    /// `Verify` invocations that returned true.
    pub verify_true: u64,
    /// `Refine` invocations.
    pub refine_calls: u64,
    /// Total assignments produced across all `Refine` calls.
    pub refine_out: u64,
}

impl FeatStats {
    /// Estimated pass rate in `[0, 1]`: fraction of probes this feature
    /// lets through. `None` until enough calls have been observed to
    /// trust the estimate.
    pub fn pass_rate(&self) -> Option<f64> {
        let calls = self.verify_calls + self.refine_calls;
        if calls < 8 {
            return None;
        }
        // A refine call "passes" to the extent it produces output; cap
        // the per-call contribution at 1 so prolific refines don't look
        // anti-selective.
        let passed = self.verify_true as f64 + (self.refine_out as f64).min(self.refine_calls as f64);
        Some((passed / calls as f64).clamp(0.0, 1.0))
    }
}

/// Stored key of the cell-level cache: the full input cell contents plus
/// the constraint-chain identity. Equality is exact — the hash only
/// routes to a bucket.
#[derive(Debug, Clone)]
struct CellKey {
    ctx: Arc<str>,
    assigns: Vec<Assignment>,
    expand: bool,
}

impl CellKey {
    fn matches(&self, ctx: &CellCtx, cell: &Cell) -> bool {
        self.expand == cell.is_expand()
            && self.assigns.as_slice() == cell.assignments()
            && (Arc::ptr_eq(&self.ctx, &ctx.text) || *self.ctx == *ctx.text)
    }
}

fn cell_hash(ctx: &CellCtx, cell: &Cell) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx.hash);
    h.write_u8(u8::from(cell.is_expand()));
    for a in cell.assignments() {
        a.hash(&mut h);
    }
    h.finish()
}

/// Stored key of the tuple-level cache: one fused σ-pipeline identity
/// plus the *entire* input tuple's cells.
#[derive(Debug, Clone)]
struct TupleKey {
    ctx: Arc<str>,
    cells: Vec<Cell>,
}

impl TupleKey {
    fn matches(&self, ctx: &CellCtx, cells: &[Cell]) -> bool {
        self.cells.as_slice() == cells
            && (Arc::ptr_eq(&self.ctx, &ctx.text) || *self.ctx == *ctx.text)
    }
}

/// Cached outcome of running one tuple through a fused σ/π pipeline
/// (`exec`'s `Plan::Fused` interpreter). Deterministic given the input
/// cells, the pipeline identity, and the immutable document store, so it
/// can be replayed for every identical tuple across rules, iterations,
/// and simulation probes.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleOutcome {
    /// Output cells (post-projection when the pipeline ends in π);
    /// `None` when the tuple was dropped by a selection.
    pub cells: Option<Arc<Vec<Cell>>>,
    /// Whether the pipeline's may/must comparisons widened the tuple
    /// (`maybe |= extra_maybe`); meaningless when dropped.
    pub extra_maybe: bool,
    /// The convergence-signal volume this tuple contributes (§ Project's
    /// assignments-produced accounting); 0 when dropped.
    pub volume: u64,
}

fn tuple_hash(ctx: &CellCtx, cells: &[Cell]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx.hash);
    h.write_usize(cells.len());
    for c in cells {
        h.write_u8(u8::from(c.is_expand()));
        for a in c.assignments() {
            a.hash(&mut h);
        }
    }
    h.finish()
}

type Bucket<K, V> = HashMap<u64, Vec<(K, V)>, FxBuild>;

/// The sharded, thread-safe memo table. See the module docs.
///
/// Three levels share the hit/miss counters:
/// * **feature level** — one entry per `Verify`/`Refine` invocation;
/// * **cell level** — one entry per (cell contents, constraint chain)
///   pair, so a hit skips the whole §4.2 refinement worklist;
/// * **tuple level** — one entry per (tuple cells, fused pipeline) pair,
///   so a hit skips an entire fused σ/π pass (DESIGN.md §11).
///
/// Entries live in per-shard buckets keyed by a precomputed 64-bit hash;
/// collisions fall back to exact key comparison, so a hit is always a
/// true hit.
#[derive(Debug)]
pub struct FeatureMemo {
    feat: Vec<Mutex<Bucket<MemoKey, MemoValue>>>,
    cells: Vec<Mutex<Bucket<CellKey, Cell>>>,
    tuples: Vec<Mutex<Bucket<TupleKey, TupleOutcome>>>,
    stats: Mutex<HashMap<String, FeatStats>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for FeatureMemo {
    fn default() -> Self {
        FeatureMemo {
            feat: (0..SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
            cells: (0..SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
            tuples: (0..SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
            stats: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl FeatureMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a feature result, counting the hit or miss. Returns the
    /// query's hash so the miss path can insert without rehashing.
    pub fn get(&self, q: &MemoQuery<'_>) -> (u64, Option<MemoValue>) {
        let h = q.hash64();
        let shard = self.feat[h as usize % SHARDS].lock().unwrap();
        let found = shard
            .get(&h)
            .and_then(|b| b.iter().find(|(k, _)| q.matches(k)))
            .map(|(_, v)| v.clone());
        drop(shard);
        self.count(found.is_some());
        (h, found)
    }

    /// Stores a feature result under the hash [`FeatureMemo::get`]
    /// returned (last write wins; feature procedures are pure, so racing
    /// writers store the same value).
    pub fn insert(&self, hash: u64, q: &MemoQuery<'_>, value: MemoValue) {
        let mut shard = self.feat[hash as usize % SHARDS].lock().unwrap();
        let bucket = shard.entry(hash).or_default();
        if !bucket.iter().any(|(k, _)| q.matches(k)) {
            bucket.push((q.to_key(), value));
        }
    }

    /// Looks up a whole-cell constraint application, counting the hit or
    /// miss. Returns the hash for the paired insert.
    pub fn get_cell(&self, ctx: &CellCtx, cell: &Cell) -> (u64, Option<Cell>) {
        let h = cell_hash(ctx, cell);
        let shard = self.cells[h as usize % SHARDS].lock().unwrap();
        let found = shard
            .get(&h)
            .and_then(|b| b.iter().find(|(k, _)| k.matches(ctx, cell)))
            .map(|(_, v)| v.clone());
        drop(shard);
        self.count(found.is_some());
        (h, found)
    }

    /// Stores the result of applying a constraint chain to one cell.
    pub fn insert_cell(&self, hash: u64, ctx: &CellCtx, cell: &Cell, out: Cell) {
        let mut shard = self.cells[hash as usize % SHARDS].lock().unwrap();
        let bucket = shard.entry(hash).or_default();
        if !bucket.iter().any(|(k, _)| k.matches(ctx, cell)) {
            bucket.push((
                CellKey {
                    ctx: Arc::clone(&ctx.text),
                    assigns: cell.assignments().to_vec(),
                    expand: cell.is_expand(),
                },
                out,
            ));
        }
    }

    /// Batch form of [`FeatureMemo::get_cell`] for one column run
    /// (DESIGN.md §14): hashes every cell up front, groups lookups by
    /// shard, and takes each shard lock **once per run** instead of once
    /// per tuple. Hits are resolved with the same borrowed-key compares
    /// as the scalar path (no allocation on a hit). Results are aligned
    /// positionally with `cells`; each `(hash, hit)` pair feeds the paired
    /// [`FeatureMemo::insert_cell_batch`] on the miss path.
    pub fn get_cell_batch(&self, ctx: &CellCtx, cells: &[&Cell]) -> Vec<(u64, Option<Cell>)> {
        let mut out: Vec<(u64, Option<Cell>)> = cells
            .iter()
            .map(|c| (cell_hash(ctx, c), None))
            .collect();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
        for (i, (h, _)) in out.iter().enumerate() {
            by_shard[*h as usize % SHARDS].push(i);
        }
        for (s, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let shard = self.cells[s].lock().unwrap();
            for &i in idxs {
                let (h, slot) = &mut out[i];
                *slot = shard
                    .get(h)
                    .and_then(|b| b.iter().find(|(k, _)| k.matches(ctx, cells[i])))
                    .map(|(_, v)| v.clone());
            }
        }
        for (_, found) in &out {
            self.count(found.is_some());
        }
        out
    }

    /// Batch form of [`FeatureMemo::insert_cell`]: stores one run's miss
    /// results, taking each shard lock once. Hashes come from the paired
    /// [`FeatureMemo::get_cell_batch`].
    pub fn insert_cell_batch(&self, ctx: &CellCtx, entries: &[(u64, &Cell, Cell)]) {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
        for (i, (h, _, _)) in entries.iter().enumerate() {
            by_shard[*h as usize % SHARDS].push(i);
        }
        for (s, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut shard = self.cells[s].lock().unwrap();
            for &i in idxs {
                let (h, cell, out) = &entries[i];
                let bucket = shard.entry(*h).or_default();
                if !bucket.iter().any(|(k, _)| k.matches(ctx, cell)) {
                    bucket.push((
                        CellKey {
                            ctx: Arc::clone(&ctx.text),
                            assigns: cell.assignments().to_vec(),
                            expand: cell.is_expand(),
                        },
                        out.clone(),
                    ));
                }
            }
        }
    }

    /// Looks up a fused-pipeline outcome for one tuple, counting the hit
    /// or miss. Returns the hash for the paired insert.
    pub fn get_tuple(&self, ctx: &CellCtx, cells: &[Cell]) -> (u64, Option<TupleOutcome>) {
        let h = tuple_hash(ctx, cells);
        let shard = self.tuples[h as usize % SHARDS].lock().unwrap();
        let found = shard
            .get(&h)
            .and_then(|b| b.iter().find(|(k, _)| k.matches(ctx, cells)))
            .map(|(_, v)| v.clone());
        drop(shard);
        self.count(found.is_some());
        (h, found)
    }

    /// Stores the outcome of running one tuple through a fused pipeline.
    pub fn insert_tuple(&self, hash: u64, ctx: &CellCtx, cells: &[Cell], out: TupleOutcome) {
        let mut shard = self.tuples[hash as usize % SHARDS].lock().unwrap();
        let bucket = shard.entry(hash).or_default();
        if !bucket.iter().any(|(k, _)| k.matches(ctx, cells)) {
            bucket.push((
                TupleKey {
                    ctx: Arc::clone(&ctx.text),
                    cells: cells.to_vec(),
                },
                out,
            ));
        }
    }

    /// Records one `Verify` invocation (miss path only — hits never call
    /// the feature, so they carry no new selectivity signal).
    pub fn note_verify(&self, feature: &str, passed: bool) {
        let mut stats = self.stats.lock().unwrap();
        let s = stats.entry(feature.to_string()).or_default();
        s.verify_calls += 1;
        s.verify_true += u64::from(passed);
    }

    /// Records one `Refine` invocation and how many assignments it
    /// produced (miss path only).
    pub fn note_refine(&self, feature: &str, out_len: usize) {
        let mut stats = self.stats.lock().unwrap();
        let s = stats.entry(feature.to_string()).or_default();
        s.refine_calls += 1;
        s.refine_out = s.refine_out.saturating_add(out_len as u64);
    }

    /// A snapshot of per-feature call statistics, for the optimizer's
    /// selectivity model. Cheap: the stats map has one entry per feature
    /// name, not per call.
    pub fn feature_stats(&self) -> HashMap<String, FeatStats> {
        self.stats.lock().unwrap().clone()
    }

    /// Drops every entry (feature registry changed).
    pub fn clear(&self) {
        for s in &self.feat {
            s.lock().unwrap().clear();
        }
        for s in &self.cells {
            s.lock().unwrap().clear();
        }
        for s in &self.tuples {
            s.lock().unwrap().clear();
        }
        self.stats.lock().unwrap().clear();
    }

    /// Total entries across shards (all levels).
    pub fn len(&self) -> usize {
        let feat: usize = self
            .feat
            .iter()
            .map(|s| s.lock().unwrap().values().map(Vec::len).sum::<usize>())
            .sum();
        let cells: usize = self
            .cells
            .iter()
            .map(|s| s.lock().unwrap().values().map(Vec::len).sum::<usize>())
            .sum();
        let tuples: usize = self
            .tuples
            .iter()
            .map(|s| s.lock().unwrap().values().map(Vec::len).sum::<usize>())
            .sum();
        feat + cells + tuples
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// One consistent `(hits, misses)` reading. The memo is shared
    /// across runs and snapshot engines, so its counters are lifetime
    /// totals; per-run figures (what `ExecStats` reports and the engine
    /// mirrors into its metrics registry as
    /// `engine.feature_cache_{hits,misses}`) are deltas between two
    /// snapshots taken at run start and end.
    pub fn counters(&self) -> (usize, usize) {
        (self.hits(), self.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(doc: u32, start: u32, end: u32) -> Span {
        Span {
            doc: iflex_text::DocId(doc),
            start,
            end,
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let memo = FeatureMemo::new();
        let value = Value::Span(span(0, 0, 4));
        let arg = FeatureArg::yes();
        let q = MemoQuery::Verify {
            value: &value,
            feature: "bold-font",
            arg: &arg,
        };
        let (h, found) = memo.get(&q);
        assert!(found.is_none());
        memo.insert(h, &q, MemoValue::Verified(true));
        let (h2, found) = memo.get(&q);
        assert_eq!(h, h2, "query hash is stable");
        assert!(matches!(found, Some(MemoValue::Verified(true))));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn num_args_distinguished_by_bits_not_text() {
        let a = ArgKey::from(&FeatureArg::Num(1.0));
        let b = ArgKey::from(&FeatureArg::Num(1.0 + f64::EPSILON));
        assert_ne!(a, b);
        assert_eq!(a, ArgKey::from(&FeatureArg::Num(1.0)));
        // the borrowed query distinguishes the same way
        let arg_a = FeatureArg::Num(1.0);
        let arg_b = FeatureArg::Num(1.0 + f64::EPSILON);
        let memo = FeatureMemo::new();
        let qa = MemoQuery::Refine {
            span: span(0, 0, 4),
            feature: "min-value",
            arg: &arg_a,
        };
        let qb = MemoQuery::Refine {
            span: span(0, 0, 4),
            feature: "min-value",
            arg: &arg_b,
        };
        let (ha, _) = memo.get(&qa);
        memo.insert(ha, &qa, MemoValue::Refined(Arc::new(vec![])));
        assert!(memo.get(&qb).1.is_none());
        assert!(memo.get(&qa).1.is_some());
    }

    #[test]
    fn clear_empties_every_shard() {
        let memo = FeatureMemo::new();
        let arg = FeatureArg::yes();
        for i in 0..100 {
            let q = MemoQuery::Refine {
                span: span(i, 0, 8),
                feature: "bold-font",
                arg: &arg,
            };
            let (h, _) = memo.get(&q);
            memo.insert(h, &q, MemoValue::Refined(Arc::new(vec![])));
        }
        assert_eq!(memo.len(), 100);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn shared_across_clones_of_the_arc() {
        let memo = Arc::new(FeatureMemo::new());
        let other = Arc::clone(&memo);
        let value = Value::Null;
        let arg = FeatureArg::no();
        let q = MemoQuery::Verify {
            value: &value,
            feature: "f",
            arg: &arg,
        };
        let (h, _) = memo.get(&q);
        memo.insert(h, &q, MemoValue::Verified(false));
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn tuple_cache_round_trips_and_distinguishes_pipelines() {
        let memo = FeatureMemo::new();
        let ctx = CellCtx::new("numeric\u{1}|π[0]".into());
        let cells = vec![Cell::contain(span(0, 0, 12)), Cell::contain(span(0, 4, 8))];
        let out = TupleOutcome {
            cells: Some(Arc::new(vec![Cell::of(vec![Assignment::Exact(Value::Num(7.0))])])),
            extra_maybe: true,
            volume: 3,
        };
        let (h, found) = memo.get_tuple(&ctx, &cells);
        assert!(found.is_none());
        memo.insert_tuple(h, &ctx, &cells, out.clone());
        assert_eq!(memo.get_tuple(&ctx, &cells).1, Some(out));
        // dropped tuples cache too
        let other_ctx = CellCtx::new("bold-font\u{1}".into());
        let (h2, found) = memo.get_tuple(&other_ctx, &cells);
        assert!(found.is_none());
        memo.insert_tuple(
            h2,
            &other_ctx,
            &cells,
            TupleOutcome {
                cells: None,
                extra_maybe: false,
                volume: 0,
            },
        );
        let hit = memo.get_tuple(&other_ctx, &cells).1.unwrap();
        assert!(hit.cells.is_none());
        memo.clear();
        assert!(memo.get_tuple(&ctx, &cells).1.is_none());
    }

    #[test]
    fn feature_stats_accumulate_and_rate() {
        let memo = FeatureMemo::new();
        for i in 0..10 {
            memo.note_verify("picky", i == 0);
        }
        for _ in 0..10 {
            memo.note_verify("lenient", true);
        }
        memo.note_refine("picky", 0);
        let stats = memo.feature_stats();
        let picky = stats["picky"];
        assert_eq!(picky.verify_calls, 10);
        assert_eq!(picky.verify_true, 1);
        assert!(picky.pass_rate().unwrap() < 0.2);
        assert!(stats["lenient"].pass_rate().unwrap() > 0.9);
        // too few observations → no estimate
        memo.note_verify("rare", true);
        assert!(memo.feature_stats()["rare"].pass_rate().is_none());
    }

    #[test]
    fn cell_cache_round_trips_exact_contents() {
        let memo = FeatureMemo::new();
        let ctx = CellCtx::new("numeric\u{1}tri:yes".into());
        let cell = Cell::contain(span(0, 0, 12));
        let out = Cell::of(vec![Assignment::Exact(Value::Num(7.0))]);
        let (h, found) = memo.get_cell(&ctx, &cell);
        assert!(found.is_none());
        memo.insert_cell(h, &ctx, &cell, out.clone());
        assert_eq!(memo.get_cell(&ctx, &cell).1, Some(out));
        // a different chain (different ctx text) misses
        let other_ctx = CellCtx::new("bold-font\u{1}tri:yes".into());
        assert!(memo.get_cell(&other_ctx, &cell).1.is_none());
        // a different cell misses
        let other_cell = Cell::contain(span(0, 0, 13));
        assert!(memo.get_cell(&ctx, &other_cell).1.is_none());
    }
}
