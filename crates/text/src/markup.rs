//! Mini-HTML markup parser.
//!
//! The corpora iFlex extracts from are Web pages. This module parses a small,
//! well-defined HTML subset into plain text plus *formatting runs* and
//! *structure* (title, section labels, list items, hyperlink targets). The
//! text features in `iflex-features` (bold-font, in-title, prec-label-contains,
//! ...) are all evaluated against this representation.
//!
//! Supported tags (case-insensitive):
//! `<b>`, `<strong>` → bold; `<i>`, `<em>` → italic; `<u>` → underline;
//! `<a href="...">` → hyperlink; `<title>`/`<h1>`..`<h6>`/`<h>` → title or
//! section label; `<li>` → list item; `<br>`, `<p>`, `<div>`, `<tr>`, `<td>`
//! → block separators. Unknown tags are ignored (their content is kept).
//! Entities `&amp; &lt; &gt; &quot; &#NN;` are decoded.

use serde::{Deserialize, Serialize};

/// Style bit flags attached to a formatting run.
pub mod style {
    /// Bold text.
    pub const BOLD: u8 = 1 << 0;
    /// Italic text.
    pub const ITALIC: u8 = 1 << 1;
    /// Underlined text.
    pub const UNDERLINE: u8 = 1 << 2;
    /// Hyperlinked text.
    pub const LINK: u8 = 1 << 3;
}

/// A maximal run of text carrying a fixed set of style flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormatRun {
    /// The start.
    pub start: u32,
    /// The end.
    pub end: u32,
    /// The flags.
    pub flags: u8,
}

/// A section label (`<h1>`..`<h6>` or `<h>` content that is not the page
/// title): its own byte range, used by the `prec-label-*` features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Label {
    /// The start.
    pub start: u32,
    /// The end.
    pub end: u32,
}

/// Result of parsing markup: plain text plus layered structure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParsedMarkup {
    /// The text.
    pub text: String,
    /// The runs.
    pub runs: Vec<FormatRun>,
    /// Byte range of the `<title>` content (first one wins).
    pub title: Option<(u32, u32)>,
    /// The labels.
    pub labels: Vec<Label>,
    /// Byte ranges of `<li>` contents.
    pub list_items: Vec<(u32, u32)>,
    /// `(range, href)` for each `<a href>` region.
    pub links: Vec<((u32, u32), String)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagKind {
    Bold,
    Italic,
    Underline,
    Anchor,
    Title,
    Heading,
    ListItem,
    Block,
    Unknown,
}

fn classify(name: &str) -> TagKind {
    match name {
        "b" | "strong" => TagKind::Bold,
        "i" | "em" => TagKind::Italic,
        "u" => TagKind::Underline,
        "a" => TagKind::Anchor,
        "title" => TagKind::Title,
        "h" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => TagKind::Heading,
        "li" => TagKind::ListItem,
        "br" | "p" | "div" | "tr" | "td" | "ul" | "ol" | "table" | "hr" | "span" => TagKind::Block,
        _ => TagKind::Unknown,
    }
}

struct OpenTag {
    kind: TagKind,
    text_start: u32,
    href: Option<String>,
}

/// Parses `source` markup. Never fails: malformed markup degrades to text.
pub fn parse(source: &str) -> ParsedMarkup {
    let mut out = ParsedMarkup::default();
    let bytes = source.as_bytes();
    let mut stack: Vec<OpenTag> = Vec::new();
    let mut flags: u8 = 0;
    let mut run_start: u32 = 0;
    let mut i = 0usize;

    // Pending flag state flushes the current run when flags change.
    macro_rules! flush_run {
        ($new_flags:expr) => {{
            let pos = out.text.len() as u32;
            if flags != 0 && pos > run_start {
                out.runs.push(FormatRun {
                    start: run_start,
                    end: pos,
                    flags,
                });
            }
            flags = $new_flags;
            run_start = pos;
        }};
    }

    // Ensure whitespace separation at block boundaries.
    macro_rules! block_break {
        () => {
            if !out.text.is_empty() && !out.text.ends_with('\n') {
                out.text.push('\n');
            }
        };
    }

    while i < bytes.len() {
        if bytes[i] == b'<' {
            // find '>'
            if let Some(close) = source[i + 1..].find('>') {
                let inner = &source[i + 1..i + 1 + close];
                i += close + 2;
                let inner = inner.trim();
                if inner.starts_with("!--") {
                    continue; // comment-ish; contents already consumed to '>'
                }
                let (closing, body) = if let Some(rest) = inner.strip_prefix('/') {
                    (true, rest.trim())
                } else {
                    (false, inner)
                };
                let body = body.strip_suffix('/').unwrap_or(body).trim();
                let name_end = body
                    .find(|c: char| c.is_whitespace())
                    .unwrap_or(body.len());
                let name = body[..name_end].to_ascii_lowercase();
                let kind = classify(&name);
                if closing {
                    if kind == TagKind::Block {
                        // Block tags never push onto the stack.
                        block_break!();
                        continue;
                    }
                    // Find matching open tag (innermost of this kind).
                    if let Some(pos) = stack.iter().rposition(|t| t.kind == kind) {
                        let tag = stack.remove(pos);
                        let end = out.text.len() as u32;
                        match tag.kind {
                            TagKind::Title => {
                                if out.title.is_none() {
                                    out.title = Some((tag.text_start, end));
                                } else {
                                    out.labels.push(Label {
                                        start: tag.text_start,
                                        end,
                                    });
                                }
                                block_break!();
                            }
                            TagKind::Heading => {
                                out.labels.push(Label {
                                    start: tag.text_start,
                                    end,
                                });
                                block_break!();
                            }
                            TagKind::ListItem => {
                                out.list_items.push((tag.text_start, end));
                                block_break!();
                            }
                            TagKind::Anchor => {
                                out.links
                                    .push(((tag.text_start, end), tag.href.unwrap_or_default()));
                                flush_run!(recompute_flags(&stack));
                            }
                            TagKind::Bold | TagKind::Italic | TagKind::Underline => {
                                flush_run!(recompute_flags(&stack));
                            }
                            TagKind::Block => block_break!(),
                            TagKind::Unknown => {}
                        }
                    }
                } else {
                    match kind {
                        TagKind::Bold | TagKind::Italic | TagKind::Underline => {
                            stack.push(OpenTag {
                                kind,
                                text_start: out.text.len() as u32,
                                href: None,
                            });
                            flush_run!(recompute_flags(&stack));
                        }
                        TagKind::Anchor => {
                            let href = extract_attr(body, "href");
                            stack.push(OpenTag {
                                kind,
                                text_start: out.text.len() as u32,
                                href,
                            });
                            flush_run!(recompute_flags(&stack));
                        }
                        TagKind::Title | TagKind::Heading | TagKind::ListItem => {
                            block_break!();
                            stack.push(OpenTag {
                                kind,
                                text_start: out.text.len() as u32,
                                href: None,
                            });
                        }
                        TagKind::Block => block_break!(),
                        TagKind::Unknown => {}
                    }
                }
            } else {
                // lone '<' at EOF: treat as text
                out.text.push('<');
                i += 1;
            }
        } else if bytes[i] == b'&' {
            let (decoded, consumed) = decode_entity(&source[i..]);
            out.text.push_str(&decoded);
            i += consumed;
        } else {
            // copy one UTF-8 character
            let ch_len = utf8_len(bytes[i]);
            out.text.push_str(&source[i..i + ch_len]);
            i += ch_len;
        }
    }
    // Final run flush.
    let pos = out.text.len() as u32;
    if flags != 0 && pos > run_start {
        out.runs.push(FormatRun {
            start: run_start,
            end: pos,
            flags,
        });
    }
    out
}

fn recompute_flags(stack: &[OpenTag]) -> u8 {
    let mut f = 0;
    for t in stack {
        f |= match t.kind {
            TagKind::Bold => style::BOLD,
            TagKind::Italic => style::ITALIC,
            TagKind::Underline => style::UNDERLINE,
            TagKind::Anchor => style::LINK,
            _ => 0,
        };
    }
    f
}

fn extract_attr(tag_body: &str, attr: &str) -> Option<String> {
    let lower = tag_body.to_ascii_lowercase();
    let pos = lower.find(attr)?;
    let rest = &tag_body[pos + attr.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(stripped[..end].to_string())
    } else if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped.find('\'')?;
        Some(stripped[..end].to_string())
    } else {
        let end = rest
            .find(|c: char| c.is_whitespace())
            .unwrap_or(rest.len());
        Some(rest[..end].to_string())
    }
}

fn decode_entity(s: &str) -> (String, usize) {
    debug_assert!(s.starts_with('&'));
    if let Some(semi) = s.find(';').filter(|&i| i <= 9) {
        let name = &s[1..semi];
        let decoded = match name {
            "amp" => Some("&".to_string()),
            "lt" => Some("<".to_string()),
            "gt" => Some(">".to_string()),
            "quot" => Some("\"".to_string()),
            "apos" => Some("'".to_string()),
            "nbsp" => Some(" ".to_string()),
            _ => {
                if let Some(num) = name.strip_prefix('#') {
                    num.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .map(|c| c.to_string())
                } else {
                    None
                }
            }
        };
        if let Some(d) = decoded {
            return (d, semi + 1);
        }
    }
    ("&".to_string(), 1)
}

#[inline]
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passthrough() {
        let p = parse("hello world");
        assert_eq!(p.text, "hello world");
        assert!(p.runs.is_empty());
    }

    #[test]
    fn bold_run_recorded() {
        let p = parse("price is <b>35</b> dollars");
        assert_eq!(p.text, "price is 35 dollars");
        assert_eq!(p.runs.len(), 1);
        let r = p.runs[0];
        assert_eq!(&p.text[r.start as usize..r.end as usize], "35");
        assert_eq!(r.flags, style::BOLD);
    }

    #[test]
    fn nested_styles_union_flags() {
        let p = parse("<b>a<i>b</i>c</b>");
        assert_eq!(p.text, "abc");
        let flags_at = |pos: u32| {
            p.runs
                .iter()
                .filter(|r| r.start <= pos && pos < r.end)
                .fold(0u8, |acc, r| acc | r.flags)
        };
        assert_eq!(flags_at(0), style::BOLD);
        assert_eq!(flags_at(1), style::BOLD | style::ITALIC);
        assert_eq!(flags_at(2), style::BOLD);
    }

    #[test]
    fn title_and_labels() {
        let p = parse("<title>My Page</title><h2>Section A</h2>body<h2>Section B</h2>tail");
        let (ts, te) = p.title.unwrap();
        assert_eq!(&p.text[ts as usize..te as usize], "My Page");
        assert_eq!(p.labels.len(), 2);
        let l = &p.labels[0];
        assert_eq!(&p.text[l.start as usize..l.end as usize], "Section A");
    }

    #[test]
    fn list_items_recorded() {
        let p = parse("<ul><li>one</li><li>two</li></ul>");
        assert_eq!(p.list_items.len(), 2);
        let (s, e) = p.list_items[1];
        assert_eq!(&p.text[s as usize..e as usize], "two");
    }

    #[test]
    fn links_with_href() {
        let p = parse(r#"see <a href="http://x.org">here</a>."#);
        assert_eq!(p.links.len(), 1);
        let ((s, e), href) = &p.links[0];
        assert_eq!(&p.text[*s as usize..*e as usize], "here");
        assert_eq!(href, "http://x.org");
        assert_eq!(p.runs.len(), 1);
        assert_eq!(p.runs[0].flags, style::LINK);
    }

    #[test]
    fn entities_decoded() {
        let p = parse("AT&amp;T &lt;3 &#65;");
        assert_eq!(p.text, "AT&T <3 A");
    }

    #[test]
    fn block_tags_insert_newlines() {
        let p = parse("a<br>b<p>c</p>d");
        assert_eq!(p.text, "a\nb\nc\nd");
    }

    #[test]
    fn malformed_markup_degrades_gracefully() {
        let p = parse("<b>unclosed and < lone");
        assert_eq!(p.text, "unclosed and < lone");
        // unclosed <b>: the run is flushed at EOF
        assert_eq!(p.runs.len(), 1);
    }

    #[test]
    fn unknown_tags_keep_content() {
        let p = parse("<foo>kept</foo>");
        assert_eq!(p.text, "kept");
    }

    #[test]
    fn second_title_becomes_label() {
        let p = parse("<title>T1</title><title>T2</title>");
        assert!(p.title.is_some());
        assert_eq!(p.labels.len(), 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn comments_are_skipped() {
        let p = parse("before<!-- hidden -->after");
        assert_eq!(p.text, "beforeafter");
    }

    #[test]
    fn self_closing_tags() {
        let p = parse("a<br/>b");
        assert_eq!(p.text, "a\nb");
    }

    #[test]
    fn case_insensitive_tags() {
        let p = parse("<B>x</B> <I>y</I>");
        assert_eq!(p.runs.len(), 2);
        assert_eq!(p.runs[0].flags, style::BOLD);
        assert_eq!(p.runs[1].flags, style::ITALIC);
    }

    #[test]
    fn numeric_entities() {
        let p = parse("&#8212; dash &#65;&#66;");
        assert!(p.text.contains('—'));
        assert!(p.text.ends_with("AB"));
    }

    #[test]
    fn mismatched_close_ignored() {
        let p = parse("</b>text</i>");
        assert_eq!(p.text, "text");
        assert!(p.runs.is_empty());
    }

    #[test]
    fn attr_variants() {
        for src in [
            r#"<a href="u1">x</a>"#,
            r#"<a href='u1'>x</a>"#,
            r#"<a href=u1>x</a>"#,
            r#"<a HREF="u1">x</a>"#,
        ] {
            let p = parse(src);
            assert_eq!(p.links[0].1, "u1", "{src}");
        }
    }
}
