//! Tokenization of document text.
//!
//! Compact-table semantics enumerate "all sub-spans" of a span. iFlex
//! interprets that as *token-aligned* sub-spans (contiguous token ranges):
//! extraction targets are words, numbers, and phrases, never half a word.
//! The tokenizer here is deliberately simple and deterministic so that
//! possible-worlds enumeration in `iflex-ctable` is well defined.

use serde::{Deserialize, Serialize};

/// Classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic word (may contain interior apostrophes: `don't`).
    Word,
    /// Number: digits with optional interior `,` group separators, optional
    /// decimal point, optional leading `$` handled as punctuation.
    Number,
    /// Single punctuation character.
    Punct,
}

/// A token: byte range within the owning document plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The start.
    pub start: u32,
    /// The end.
    pub end: u32,
    /// The kind.
    pub kind: TokenKind,
}

impl Token {
    #[inline]
    /// The byte range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    #[inline]
    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Tokenizes `text` into words, numbers, and punctuation.
///
/// Whitespace separates tokens and is never part of one. Number tokens
/// accept interior thousands separators (`1,234,567`) and one decimal point
/// (`35.99`); a trailing separator/point belongs to the following
/// punctuation, so `"5146."` is `[Number("5146"), Punct(".")]`.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            i += 1;
            loop {
                if i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                } else if i + 1 < bytes.len()
                    && (bytes[i] == b',' || bytes[i] == b'.')
                    && bytes[i + 1].is_ascii_digit()
                {
                    // interior separator followed by more digits
                    i += 2;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                start: start as u32,
                end: i as u32,
                kind: TokenKind::Number,
            });
            continue;
        }
        if b.is_ascii_alphabetic() || b >= 0x80 {
            let start = i;
            i += 1;
            loop {
                if i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] >= 0x80) {
                    i += 1;
                } else if i + 1 < bytes.len()
                    && (bytes[i] == b'\'' || bytes[i] == b'-')
                    && (bytes[i + 1].is_ascii_alphanumeric() || bytes[i + 1] >= 0x80)
                {
                    // interior apostrophe or hyphen: don't, Garcia-Molina
                    i += 2;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                start: start as u32,
                end: i as u32,
                kind: TokenKind::Word,
            });
            continue;
        }
        // single punctuation byte
        tokens.push(Token {
            start: i as u32,
            end: (i + 1) as u32,
            kind: TokenKind::Punct,
        });
        i += 1;
    }
    tokens
}

/// Index over a token stream supporting span/token alignment queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TokenIndex {
    tokens: Vec<Token>,
}

impl TokenIndex {
    /// Creates a new instance.
    pub fn new(text: &str) -> Self {
        TokenIndex {
            tokens: tokenize(text),
        }
    }

    /// From tokens.
    pub fn from_tokens(tokens: Vec<Token>) -> Self {
        TokenIndex { tokens }
    }

    #[inline]
    /// The token list.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    #[inline]
    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Indices `[lo, hi)` of tokens fully contained in byte range
    /// `[start, end)`.
    pub fn tokens_within(&self, start: u32, end: u32) -> std::ops::Range<usize> {
        let lo = self.tokens.partition_point(|t| t.start < start);
        let hi = self.tokens.partition_point(|t| t.end <= end);
        if lo >= hi {
            lo..lo
        } else {
            lo..hi
        }
    }

    /// Number of tokens fully contained in `[start, end)`.
    pub fn count_within(&self, start: u32, end: u32) -> usize {
        self.tokens_within(start, end).len()
    }

    /// Byte range covered by tokens `[lo, hi)`, or `None` when empty.
    pub fn cover(&self, range: std::ops::Range<usize>) -> Option<(u32, u32)> {
        if range.is_empty() || range.end > self.tokens.len() {
            return None;
        }
        Some((self.tokens[range.start].start, self.tokens[range.end - 1].end))
    }

    /// Token containing byte position `pos`, if any.
    pub fn token_at(&self, pos: u32) -> Option<&Token> {
        let idx = self.tokens.partition_point(|t| t.end <= pos);
        self.tokens.get(idx).filter(|t| t.start <= pos)
    }

    /// Number of token-aligned non-empty sub-spans of `[start, end)`:
    /// `n * (n + 1) / 2` for `n` contained tokens.
    pub fn subspan_count(&self, start: u32, end: u32) -> u64 {
        let n = self.count_within(start, end) as u64;
        n * (n + 1) / 2
    }

    /// Iterates all token-aligned sub-spans (as byte ranges) of `[start, end)`.
    pub fn subspans(&self, start: u32, end: u32) -> SubspanIter<'_> {
        let range = self.tokens_within(start, end);
        SubspanIter {
            tokens: &self.tokens[range],
            i: 0,
            j: 0,
        }
    }
}

/// Iterator over token-aligned sub-spans; see [`TokenIndex::subspans`].
pub struct SubspanIter<'a> {
    tokens: &'a [Token],
    i: usize,
    j: usize,
}

impl Iterator for SubspanIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.i >= self.tokens.len() {
            return None;
        }
        let out = (self.tokens[self.i].start, self.tokens[self.j].end);
        self.j += 1;
        if self.j >= self.tokens.len() {
            self.i += 1;
            self.j = self.i;
        }
        Some(out)
    }
}

/// Parses the numeric value of a token or span text, accepting `,` group
/// separators and an optional leading `$`. Returns `None` for anything that
/// is not a single number.
pub fn parse_number(text: &str) -> Option<f64> {
    let t = text.trim();
    let t = t.strip_prefix('$').unwrap_or(t);
    if t.is_empty() {
        return None;
    }
    let mut cleaned = String::with_capacity(t.len());
    let mut seen_dot = false;
    for (i, c) in t.chars().enumerate() {
        match c {
            '0'..='9' => cleaned.push(c),
            ',' if i > 0 && i + 1 < t.len() => {} // group separator
            '.' if !seen_dot => {
                seen_dot = true;
                cleaned.push('.');
            }
            '-' if i == 0 => cleaned.push('-'),
            _ => return None,
        }
    }
    if cleaned.is_empty() || cleaned == "-" || cleaned == "." {
        return None;
    }
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(String, TokenKind)> {
        tokenize(text)
            .into_iter()
            .map(|t| (text[t.range()].to_string(), t.kind))
            .collect()
    }

    #[test]
    fn words_numbers_punct() {
        let ks = kinds("Price: $35.99 today!");
        assert_eq!(
            ks,
            vec![
                ("Price".into(), TokenKind::Word),
                (":".into(), TokenKind::Punct),
                ("$".into(), TokenKind::Punct),
                ("35.99".into(), TokenKind::Number),
                ("today".into(), TokenKind::Word),
                ("!".into(), TokenKind::Punct),
            ]
        );
    }

    #[test]
    fn grouped_numbers_stay_single_tokens() {
        let ks = kinds("1,234,567 and 5146.");
        assert_eq!(ks[0].0, "1,234,567");
        assert_eq!(ks[0].1, TokenKind::Number);
        assert_eq!(ks[2].0, "5146");
        assert_eq!(ks[3].0, ".");
    }

    #[test]
    fn hyphen_and_apostrophe_words() {
        let ks = kinds("Garcia-Molina doesn't");
        assert_eq!(ks[0].0, "Garcia-Molina");
        assert_eq!(ks[1].0, "doesn't");
    }

    #[test]
    fn tokens_within_is_inclusive_of_aligned_bounds() {
        let text = "one two three";
        let idx = TokenIndex::new(text);
        assert_eq!(idx.count_within(0, text.len() as u32), 3);
        assert_eq!(idx.count_within(4, 7), 1); // exactly "two"
        assert_eq!(idx.count_within(5, 7), 0); // cuts into "two"
    }

    #[test]
    fn subspan_enumeration_counts() {
        let text = "a b c";
        let idx = TokenIndex::new(text);
        let subs: Vec<_> = idx.subspans(0, 5).collect();
        assert_eq!(subs.len(), 6); // 3*(3+1)/2
        assert_eq!(idx.subspan_count(0, 5), 6);
        assert!(subs.contains(&(0, 1)));
        assert!(subs.contains(&(0, 5)));
        assert!(subs.contains(&(2, 5)));
    }

    #[test]
    fn token_at_positions() {
        let idx = TokenIndex::new("ab cd");
        assert_eq!(idx.token_at(0).map(|t| t.start), Some(0));
        assert_eq!(idx.token_at(1).map(|t| t.start), Some(0));
        assert!(idx.token_at(2).map(|t| t.start != 2).unwrap_or(true));
        assert_eq!(idx.token_at(3).map(|t| t.start), Some(3));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse_number("92"), Some(92.0));
        assert_eq!(parse_number("$500,000"), Some(500000.0));
        assert_eq!(parse_number("35.99"), Some(35.99));
        assert_eq!(parse_number("-4"), Some(-4.0));
        assert_eq!(parse_number("12a"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("1.2.3"), None);
    }

    #[test]
    fn cover_roundtrip() {
        let idx = TokenIndex::new("alpha beta gamma");
        let r = idx.tokens_within(0, 16);
        assert_eq!(idx.cover(r), Some((0, 16)));
        assert_eq!(idx.cover(0..0), None);
    }
}
