//! Byte-offset spans into documents.
//!
//! A [`Span`] identifies a contiguous region of the text of one document.
//! Spans are the currency of the whole system: extracted attribute values,
//! `exact` / `contain` assignments in compact tables, and the arguments of
//! `Verify` / `Refine` feature procedures are all spans.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a document within a [`crate::DocumentStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A contiguous byte range `[start, end)` within document `doc`.
///
/// Invariant: `start <= end`. Offsets are byte offsets into the document's
/// plain text (after markup stripping) and always lie on UTF-8 boundaries
/// when produced by this crate's tokenizer or markup parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Span {
    /// The doc.
    pub doc: DocId,
    /// The start.
    pub start: u32,
    /// The end.
    pub end: u32,
}

impl Span {
    /// Creates a new span. Panics (debug only) if `start > end`.
    #[inline]
    pub fn new(doc: DocId, start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { doc, start, end }
    }

    /// Length of the span in bytes.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the span covers zero bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The byte range as `usize` bounds, for slicing document text.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }

    /// True when `self` fully contains `other` (same document required).
    #[inline]
    pub fn contains(&self, other: &Span) -> bool {
        self.doc == other.doc && self.start <= other.start && other.end <= self.end
    }

    /// True when `self` contains the byte position `pos`.
    #[inline]
    pub fn contains_pos(&self, pos: u32) -> bool {
        self.start <= pos && pos < self.end
    }

    /// True when the two spans share at least one byte.
    #[inline]
    pub fn overlaps(&self, other: &Span) -> bool {
        self.doc == other.doc && self.start < other.end && other.start < self.end
    }

    /// Intersection of two spans, if non-empty and in the same document.
    pub fn intersect(&self, other: &Span) -> Option<Span> {
        if self.doc != other.doc {
            return None;
        }
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Span::new(self.doc, start, end))
        } else {
            None
        }
    }

    /// Smallest span covering both (same document required).
    pub fn cover(&self, other: &Span) -> Option<Span> {
        if self.doc != other.doc {
            return None;
        }
        Some(Span::new(
            self.doc,
            self.start.min(other.start),
            self.end.max(other.end),
        ))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..{}]", self.doc, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(start: u32, end: u32) -> Span {
        Span::new(DocId(0), start, end)
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(s(2, 5).len(), 3);
        assert!(!s(2, 5).is_empty());
        assert!(s(4, 4).is_empty());
    }

    #[test]
    fn containment() {
        assert!(s(0, 10).contains(&s(2, 5)));
        assert!(s(0, 10).contains(&s(0, 10)));
        assert!(!s(2, 5).contains(&s(0, 10)));
        assert!(!s(0, 10).contains(&Span::new(DocId(1), 2, 5)));
        assert!(s(0, 10).contains_pos(0));
        assert!(!s(0, 10).contains_pos(10));
    }

    #[test]
    fn overlap_and_intersection() {
        assert!(s(0, 5).overlaps(&s(4, 9)));
        assert!(!s(0, 5).overlaps(&s(5, 9)));
        assert_eq!(s(0, 5).intersect(&s(4, 9)), Some(s(4, 5)));
        assert_eq!(s(0, 5).intersect(&s(5, 9)), None);
        assert_eq!(s(0, 5).intersect(&Span::new(DocId(1), 0, 5)), None);
    }

    #[test]
    fn cover_unions() {
        assert_eq!(s(0, 3).cover(&s(7, 9)), Some(s(0, 9)));
        assert_eq!(s(7, 9).cover(&s(0, 3)), Some(s(0, 9)));
        assert_eq!(s(0, 3).cover(&Span::new(DocId(1), 7, 9)), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(s(0, 3) < s(0, 4));
        assert!(s(0, 9) < s(1, 2));
        assert!(Span::new(DocId(0), 9, 9) < Span::new(DocId(1), 0, 0));
    }
}
