//! A store of parsed documents, addressed by [`DocId`].

use crate::document::Document;
use crate::span::{DocId, Span};
use serde::{Deserialize, Serialize};

/// Owns the documents of a corpus; the single source of truth that spans
/// are resolved against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocumentStore {
    docs: Vec<Document>,
}

impl DocumentStore {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses markup and registers the document, returning its id.
    pub fn add_markup(&mut self, source: &str) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(Document::parse(id, source));
        id
    }

    /// Registers a plain-text document, returning its id.
    pub fn add_plain(&mut self, text: impl Into<String>) -> DocId {
        let id = DocId(self.docs.len() as u32);
        self.docs.push(Document::plain(id, text));
        id
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    #[inline]
    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The document with id `id`. Panics when out of range (ids are only
    /// minted by this store, so a miss is a logic error).
    #[inline]
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Fallible lookup.
    #[inline]
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(id.index())
    }

    /// Resolves the text of a span.
    #[inline]
    pub fn span_text(&self, span: &Span) -> &str {
        self.doc(span.doc).span_text(span)
    }

    /// Iterates over all documents.
    pub fn iter(&self) -> impl Iterator<Item = &Document> {
        self.docs.iter()
    }

    /// Ids of all documents.
    pub fn ids(&self) -> impl Iterator<Item = DocId> + '_ {
        (0..self.docs.len() as u32).map(DocId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_resolve() {
        let mut store = DocumentStore::new();
        let a = store.add_plain("first doc");
        let b = store.add_markup("<b>second</b> doc");
        assert_eq!(store.len(), 2);
        assert_eq!(store.doc(a).text(), "first doc");
        assert_eq!(store.doc(b).text(), "second doc");
        let span = Span::new(b, 0, 6);
        assert_eq!(store.span_text(&span), "second");
        assert!(store.get(DocId(5)).is_none());
        assert_eq!(store.ids().count(), 2);
    }
}
