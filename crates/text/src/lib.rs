//! # iflex-text
//!
//! Document substrate for the iFlex best-effort information-extraction
//! system (SIGMOD 2008): byte-offset [`Span`]s, a deterministic tokenizer,
//! a mini-HTML [`markup`] parser producing plain text plus formatting runs
//! and structure, and the [`DocumentStore`] that owns a corpus.
//!
//! Everything higher in the stack — compact tables, text features, the
//! approximate query processor — resolves spans against this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod markup;
pub mod span;
pub mod store;
pub mod token;

pub use document::{Coverage, Document};
pub use span::{DocId, Span};
pub use store::DocumentStore;
pub use token::{parse_number, tokenize, Token, TokenIndex, TokenKind};
