//! The [`Document`] type: parsed page text plus the queries features need.

use crate::markup::{self, FormatRun, ParsedMarkup};
use crate::span::{DocId, Span};
use crate::token::{Token, TokenIndex};
use serde::{Deserialize, Serialize};

/// How much of a byte range carries a given style flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// No byte of the range carries the flag.
    None,
    /// Some but not all bytes carry the flag.
    Partial,
    /// Every byte carries the flag.
    Full,
}

/// A parsed document: identity, plain text, formatting runs, structure,
/// and a token index. Immutable once built.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    id: DocId,
    text: String,
    runs: Vec<FormatRun>,
    title: Option<(u32, u32)>,
    labels: Vec<markup::Label>,
    list_items: Vec<(u32, u32)>,
    links: Vec<((u32, u32), String)>,
    tokens: TokenIndex,
}

impl Document {
    /// Parses `source` markup into a document with identity `id`.
    pub fn parse(id: DocId, source: &str) -> Self {
        let ParsedMarkup {
            text,
            mut runs,
            title,
            labels,
            list_items,
            links,
        } = markup::parse(source);
        runs.sort_by_key(|r| (r.start, r.end));
        let tokens = TokenIndex::new(&text);
        Document {
            id,
            text,
            runs,
            title,
            labels,
            list_items,
            links,
            tokens,
        }
    }

    /// Builds a plain-text document without any markup.
    pub fn plain(id: DocId, text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = TokenIndex::new(&text);
        Document {
            id,
            text,
            runs: Vec::new(),
            title: None,
            labels: Vec::new(),
            list_items: Vec::new(),
            links: Vec::new(),
            tokens,
        }
    }

    #[inline]
    /// Id.
    pub fn id(&self) -> DocId {
        self.id
    }

    #[inline]
    /// Text.
    pub fn text(&self) -> &str {
        &self.text
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.text.len() as u32
    }

    #[inline]
    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The span covering the whole document.
    #[inline]
    pub fn full_span(&self) -> Span {
        Span::new(self.id, 0, self.text.len() as u32)
    }

    /// Text of a span (must belong to this document).
    pub fn span_text(&self, span: &Span) -> &str {
        debug_assert_eq!(span.doc, self.id);
        &self.text[span.range()]
    }

    #[inline]
    /// The token list.
    pub fn tokens(&self) -> &TokenIndex {
        &self.tokens
    }

    #[inline]
    /// Token slice.
    pub fn token_slice(&self, span: &Span) -> &[Token] {
        let r = self.tokens.tokens_within(span.start, span.end);
        &self.tokens.tokens()[r]
    }

    #[inline]
    /// Title range.
    pub fn title_range(&self) -> Option<(u32, u32)> {
        self.title
    }

    #[inline]
    /// Labels.
    pub fn labels(&self) -> &[markup::Label] {
        &self.labels
    }

    #[inline]
    /// List items.
    pub fn list_items(&self) -> &[(u32, u32)] {
        &self.list_items
    }

    #[inline]
    /// Links.
    pub fn links(&self) -> &[((u32, u32), String)] {
        &self.links
    }

    #[inline]
    /// Runs.
    pub fn runs(&self) -> &[FormatRun] {
        &self.runs
    }

    /// How much of `[start, end)` carries style `flag`.
    pub fn style_coverage(&self, start: u32, end: u32, flag: u8) -> Coverage {
        if start >= end {
            return Coverage::None;
        }
        // Whitespace between styled runs should not break "fully styled":
        // count only non-whitespace bytes as needing coverage.
        let needed = self.text[start as usize..end as usize]
            .bytes()
            .filter(|b| !b.is_ascii_whitespace())
            .count() as u32;
        let covered_nonws = self.covered_nonws(start, end, flag);
        if covered_nonws == 0 {
            Coverage::None
        } else if covered_nonws >= needed {
            Coverage::Full
        } else {
            Coverage::Partial
        }
    }

    fn covered_nonws(&self, start: u32, end: u32, flag: u8) -> u32 {
        let mut covered = 0u32;
        for r in &self.runs {
            if r.flags & flag == 0 {
                continue;
            }
            let s = r.start.max(start);
            let e = r.end.min(end);
            if s < e {
                covered += self.text[s as usize..e as usize]
                    .bytes()
                    .filter(|b| !b.is_ascii_whitespace())
                    .count() as u32;
            }
        }
        covered
    }

    /// True when `[start, end)` is fully styled with `flag` *and* the
    /// adjacent tokens (if any) are not: the paper's `distinct-yes`.
    pub fn style_distinct(&self, start: u32, end: u32, flag: u8) -> bool {
        if self.style_coverage(start, end, flag) != Coverage::Full {
            return false;
        }
        // Previous token must not be styled.
        let toks = self.tokens.tokens();
        let first_inside = toks.partition_point(|t| t.start < start);
        if first_inside > 0 {
            let prev = &toks[first_inside - 1];
            if prev.end <= start
                && self.style_coverage(prev.start, prev.end, flag) != Coverage::None
            {
                return false;
            }
        }
        let first_after = toks.partition_point(|t| t.end <= end);
        if let Some(next) = toks.get(first_after) {
            if next.start >= end
                && self.style_coverage(next.start, next.end, flag) != Coverage::None
            {
                return false;
            }
        }
        true
    }

    /// Maximal ranges within `[start, end)` whose non-whitespace content is
    /// fully styled with `flag`, clipped to token boundaries.
    pub fn styled_regions(&self, start: u32, end: u32, flag: u8) -> Vec<(u32, u32)> {
        let mut regions: Vec<(u32, u32)> = Vec::new();
        for r in &self.runs {
            if r.flags & flag == 0 {
                continue;
            }
            let s = r.start.max(start);
            let e = r.end.min(end);
            if s >= e {
                continue;
            }
            match regions.last_mut() {
                // Merge adjacent/overlapping styled runs separated only by whitespace.
                Some((_, le))
                    if *le >= s
                        || self.text[*le as usize..s as usize]
                            .bytes()
                            .all(|b| b.is_ascii_whitespace()) =>
                {
                    *le = (*le).max(e);
                }
                _ => regions.push((s, e)),
            }
        }
        // Clip each region to the tokens it fully contains.
        regions
            .into_iter()
            .filter_map(|(s, e)| self.tokens.cover(self.tokens.tokens_within(s, e)))
            .collect()
    }

    /// The closest label whose end precedes `pos`, with the byte distance
    /// from the label's end to `pos`.
    pub fn preceding_label(&self, pos: u32) -> Option<(&markup::Label, u32)> {
        self.labels
            .iter()
            .filter(|l| l.end <= pos)
            .max_by_key(|l| l.end)
            .map(|l| (l, pos - l.end))
    }

    /// True when `[start, end)` lies inside the page title.
    pub fn in_title(&self, start: u32, end: u32) -> Coverage {
        match self.title {
            Some((ts, te)) if ts <= start && end <= te => Coverage::Full,
            Some((ts, te)) if start < te && ts < end => Coverage::Partial,
            _ => Coverage::None,
        }
    }

    /// True when `[start, end)` lies inside some list item.
    pub fn in_list(&self, start: u32, end: u32) -> Coverage {
        let mut best = Coverage::None;
        for &(ls, le) in &self.list_items {
            if ls <= start && end <= le {
                return Coverage::Full;
            }
            if start < le && ls < end {
                best = Coverage::Partial;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(src: &str) -> Document {
        Document::parse(DocId(0), src)
    }

    #[test]
    fn span_text_and_full_span() {
        let d = doc("hello <b>world</b>");
        assert_eq!(d.text(), "hello world");
        assert_eq!(d.span_text(&d.full_span()), "hello world");
    }

    #[test]
    fn style_coverage_levels() {
        let d = doc("aa <b>bb</b> cc");
        // "bb" is bytes 3..5
        assert_eq!(d.style_coverage(3, 5, markup::style::BOLD), Coverage::Full);
        assert_eq!(d.style_coverage(0, 2, markup::style::BOLD), Coverage::None);
        assert_eq!(
            d.style_coverage(0, 5, markup::style::BOLD),
            Coverage::Partial
        );
    }

    #[test]
    fn whitespace_between_bold_runs_counts_as_full() {
        let d = doc("<b>one</b> <b>two</b>");
        assert_eq!(
            d.style_coverage(0, d.len(), markup::style::BOLD),
            Coverage::Full
        );
    }

    #[test]
    fn distinct_requires_unstyled_neighbors() {
        let d = doc("aa <b>bb</b> cc");
        assert!(d.style_distinct(3, 5, markup::style::BOLD));
        let d2 = doc("<b>aa bb</b> cc");
        // "bb" styled but previous token "aa" also styled → not distinct
        assert!(!d2.style_distinct(3, 5, markup::style::BOLD));
    }

    #[test]
    fn styled_regions_merge_and_clip() {
        let d = doc("x <b>alpha beta</b> y <b>gamma</b>");
        let regions = d.styled_regions(0, d.len(), markup::style::BOLD);
        assert_eq!(regions.len(), 2);
        assert_eq!(&d.text()[regions[0].0 as usize..regions[0].1 as usize], "alpha beta");
        assert_eq!(&d.text()[regions[1].0 as usize..regions[1].1 as usize], "gamma");
    }

    #[test]
    fn adjacent_bold_runs_merge_across_whitespace() {
        let d = doc("<b>one</b> <b>two</b>");
        let regions = d.styled_regions(0, d.len(), markup::style::BOLD);
        assert_eq!(regions.len(), 1);
        assert_eq!(&d.text()[regions[0].0 as usize..regions[0].1 as usize], "one two");
    }

    #[test]
    fn preceding_label_finds_closest() {
        let d = doc("<h2>Alpha</h2>aaa<h2>Beta</h2>bbb");
        let pos = d.text().find("bbb").unwrap() as u32;
        let (l, dist) = d.preceding_label(pos).unwrap();
        assert_eq!(&d.text()[l.start as usize..l.end as usize], "Beta");
        assert!(dist <= 2);
    }

    #[test]
    fn title_and_list_coverage() {
        let d = doc("<title>The Title</title><ul><li>item one</li></ul>rest");
        let (ts, te) = d.title_range().unwrap();
        assert_eq!(d.in_title(ts, te), Coverage::Full);
        assert_eq!(d.in_title(te + 1, te + 2), Coverage::None);
        let (ls, le) = d.list_items()[0];
        assert_eq!(d.in_list(ls, le), Coverage::Full);
        assert_eq!(d.in_list(le + 1, le + 2), Coverage::None);
    }

    #[test]
    fn plain_document_has_no_structure() {
        let d = Document::plain(DocId(7), "just words 42");
        assert_eq!(d.id(), DocId(7));
        assert!(d.labels().is_empty());
        assert!(d.title_range().is_none());
        assert_eq!(d.tokens().len(), 3);
    }
}
