//! Property tests: tokenizer and markup parser never panic, produce
//! in-bounds aligned offsets, and respect structural invariants.

use iflex_text::{markup, tokenize, DocumentStore, TokenIndex};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenizer_offsets_in_bounds_and_ordered(text in ".{0,200}") {
        let toks = tokenize(&text);
        let mut last_end = 0u32;
        for t in &toks {
            prop_assert!(t.start >= last_end);
            prop_assert!(t.start < t.end);
            prop_assert!((t.end as usize) <= text.len());
            prop_assert!(text.is_char_boundary(t.start as usize));
            prop_assert!(text.is_char_boundary(t.end as usize));
            last_end = t.end;
        }
    }

    #[test]
    fn subspan_count_matches_enumeration(text in "[a-z0-9 .,]{0,80}") {
        let idx = TokenIndex::new(&text);
        let n = text.len() as u32;
        prop_assert_eq!(
            idx.subspan_count(0, n),
            idx.subspans(0, n).count() as u64
        );
    }

    #[test]
    fn subspans_are_token_aligned(text in "[a-z 0-9]{0,60}") {
        let idx = TokenIndex::new(&text);
        for (s, e) in idx.subspans(0, text.len() as u32) {
            prop_assert!(s < e);
            // the cover of the contained tokens is exactly the sub-span
            let r = idx.tokens_within(s, e);
            prop_assert_eq!(idx.cover(r), Some((s, e)));
        }
    }

    #[test]
    fn markup_parse_never_panics(src in ".{0,300}") {
        let parsed = markup::parse(&src);
        // runs are in-bounds and ordered
        for r in &parsed.runs {
            prop_assert!(r.start <= r.end);
            prop_assert!((r.end as usize) <= parsed.text.len());
        }
        if let Some((s, e)) = parsed.title {
            prop_assert!(s <= e && (e as usize) <= parsed.text.len());
        }
    }

    #[test]
    fn markup_plain_text_is_subsequence_of_source(src in "[a-zA-Z0-9 <>/buih]{0,120}") {
        // parsing cannot invent characters that aren't in the source
        // (entities aside, which this alphabet excludes)
        let parsed = markup::parse(&src);
        let mut source_chars = src.chars().filter(|c| *c != '<' && *c != '>' && *c != '/');
        for c in parsed
            .text
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '<' && *c != '>' && *c != '/')
        {
            prop_assert!(
                source_chars.any(|s| s == c),
                "char {c:?} not found in order in source {src:?}"
            );
        }
    }

    #[test]
    fn store_roundtrip(texts in proptest::collection::vec("[a-z ]{0,40}", 0..8)) {
        let mut store = DocumentStore::new();
        let ids: Vec<_> = texts.iter().map(|t| store.add_plain(t.clone())).collect();
        prop_assert_eq!(store.len(), texts.len());
        for (id, t) in ids.iter().zip(&texts) {
            prop_assert_eq!(store.doc(*id).text(), t.as_str());
        }
    }
}
