//! The iFlex multi-session server binary.
//!
//! ```text
//! service                    serve JSON lines on stdin/stdout (Movies corpus)
//! service --tcp ADDR         serve JSON lines over TCP (e.g. 127.0.0.1:7878)
//! service --smoke            protocol + resilience smoke gate (tier-1)
//! service --chaos [--seed N] [--full]
//!                            replay the seeded fault matrix; nonzero exit on
//!                            any isolation violation
//! ```

use iflex_corpus::{Corpus, CorpusConfig};
use iflex_engine::Engine;
use iflex_service::{chaos, fixture, serve_lines, serve_stdio, serve_tcp, Host, Json, ServiceConfig};

/// The default program served over the Movies corpus — the same starting
/// point as the interactive example.
const MOVIES_PROGRAM: &str = "q(x, title) :- imdb(x), extractTitle(#x, title).\n\
                              extractTitle(#x, t) :- from(#x, t), bold-font(t) = yes.\n";

fn corpus_host() -> Host {
    let corpus = Corpus::build(CorpusConfig::tiny());
    let mut engine = Engine::new(corpus.store.clone());
    let imdb: Vec<_> = corpus.movies.imdb.iter().map(|(d, _)| *d).collect();
    let ebert: Vec<_> = corpus.movies.ebert.iter().map(|(d, _)| *d).collect();
    engine.add_doc_table("imdb", &imdb);
    engine.add_doc_table("ebert", &ebert);
    Host::new(engine.into_core(), MOVIES_PROGRAM, ServiceConfig::default())
}

/// Drives a scripted transcript through the line server and asserts the
/// protocol behaves: session lifecycle works, results are exact, the
/// admission cap holds. Returns an error string on the first violation.
fn smoke() -> Result<(), String> {
    let cfg = ServiceConfig { max_sessions: 2, ..ServiceConfig::default() };
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, cfg);
    let script = "{\"cmd\":\"create-session\",\"id\":\"s1\"}\n\
                  {\"cmd\":\"ask-question\",\"session\":1,\"count\":2}\n\
                  {\"cmd\":\"answer\",\"session\":1,\"attr\":\"extractV.v\",\"feature\":\"bold-font\",\"value\":\"yes\"}\n\
                  {\"cmd\":\"get-results\",\"session\":1,\"limit\":8}\n\
                  {\"cmd\":\"create-session\",\"id\":\"s2\"}\n\
                  {\"cmd\":\"create-session\",\"id\":\"s3\"}\n\
                  {\"cmd\":\"stats\"}\n\
                  {\"cmd\":\"close-session\",\"session\":1}\n\
                  {\"cmd\":\"shutdown\"}\n";
    let mut out = Vec::new();
    serve_lines(&host, script.as_bytes(), &mut out).map_err(|e| format!("serve failed: {e}"))?;
    let out = String::from_utf8(out).map_err(|e| format!("non-utf8 output: {e}"))?;
    let responses: Vec<Json> = out
        .lines()
        .map(|l| iflex_service::json::parse(l).map_err(|e| format!("bad response {l:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let expect = |i: usize, field: &str, want: &Json| -> Result<(), String> {
        let got = responses
            .get(i)
            .ok_or_else(|| format!("missing response {i}"))?
            .get(field);
        if got == Some(want) {
            Ok(())
        } else {
            Err(format!("response {i}: {field} = {got:?}, want {want:?}"))
        }
    };
    if responses.len() != 9 {
        return Err(format!("expected 9 responses, got {}:\n{out}", responses.len()));
    }
    expect(0, "ok", &Json::Bool(true))?;
    expect(1, "ok", &Json::Bool(true))?;
    expect(2, "applied", &Json::Bool(true))?;
    expect(3, "degraded", &Json::Bool(false))?;
    expect(3, "tuples", &Json::num(5))?;
    expect(4, "ok", &Json::Bool(true))?;
    // Third create exceeds max_sessions=2: rejected with a retry hint.
    expect(5, "ok", &Json::Bool(false))?;
    expect(5, "retryable", &Json::Bool(true))?;
    expect(6, "sessions", &Json::num(2))?;
    expect(7, "published", &Json::Bool(true))?;
    expect(8, "drained_sessions", &Json::num(1))?;
    telemetry_smoke()
}

/// Scrapes one exposition via the server's `GET /metrics` path and
/// returns the parsed `(name-with-labels, value)` samples.
fn scrape(host: &Host) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    serve_lines(host, "GET /metrics HTTP/1.1\n".as_bytes(), &mut out)
        .map_err(|e| format!("scrape failed: {e}"))?;
    let text = String::from_utf8(out).map_err(|e| format!("non-utf8 scrape: {e}"))?;
    if !text.starts_with("HTTP/1.1 200 OK\r\n") {
        return Err(format!("scrape is not an HTTP 200: {text}"));
    }
    let body = text
        .split("\r\n\r\n")
        .nth(1)
        .ok_or_else(|| format!("scrape has no body: {text}"))?;
    let mut samples = Vec::new();
    for line in body.lines().filter(|l| !l.starts_with('#') && !l.trim().is_empty()) {
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("exposition line has no value: {line:?}"))?;
        let value: f64 =
            value.parse().map_err(|_| format!("non-numeric sample: {line:?}"))?;
        samples.push((name.to_string(), value));
    }
    Ok(samples)
}

/// The live-telemetry smoke gate: with telemetry on (the default), the
/// exposition endpoint must parse, carry per-session quantile and
/// window series, and visibly change between two scrapes separated by
/// traffic.
fn telemetry_smoke() -> Result<(), String> {
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, ServiceConfig::default());
    let drive = |n: usize| -> Result<(), String> {
        for _ in 0..n {
            let r = host.handle_line("{\"cmd\":\"get-results\",\"session\":1,\"limit\":4}");
            if r.get("ok") != Some(&Json::Bool(true)) {
                return Err(format!("get-results failed: {}", r.render()));
            }
        }
        Ok(())
    };
    let created = host.handle_line("{\"cmd\":\"create-session\"}");
    if created.get("session").and_then(Json::as_u64) != Some(1) {
        return Err(format!("create failed: {}", created.render()));
    }
    drive(2)?;
    let first = scrape(&host)?;
    drive(3)?;
    let second = scrape(&host)?;
    let find = |samples: &[(String, f64)], name: &str| -> Result<f64, String> {
        samples
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("exposition misses {name}"))
    };
    // Per-session p99 and window series exist and parse.
    let p99 = find(&first, "iflex_session_ask_to_answer_us{session=\"1\",quantile=\"0.99\"}")?;
    if p99 <= 0.0 {
        return Err(format!("session p99 not populated: {p99}"));
    }
    find(&first, "iflex_session_requests_rate{session=\"1\",window=\"10s\"}")?;
    find(&first, "iflex_session_run_us{session=\"1\",quantile=\"0.99\"}")?;
    // Traffic between scrapes moves the lifetime and sketch counts.
    let c1 = find(&first, "iflex_service_requests")?;
    let c2 = find(&second, "iflex_service_requests")?;
    if c2 <= c1 {
        return Err(format!("request counter frozen across scrapes: {c1} → {c2}"));
    }
    let s1 = find(&first, "iflex_service_ask_to_answer_us_count")?;
    let s2 = find(&second, "iflex_service_ask_to_answer_us_count")?;
    if s2 <= s1 {
        return Err(format!("latency sketch frozen across scrapes: {s1} → {s2}"));
    }
    // The protocol-side surface agrees: scoped stats, health, metrics.
    let stats = host.handle_line("{\"cmd\":\"stats\",\"session\":1}");
    if stats.get("requests_60s").and_then(Json::as_f64).unwrap_or(0.0) <= 0.0 {
        return Err(format!("scoped stats has no live rate: {}", stats.render()));
    }
    let health = host.handle_line("{\"cmd\":\"health\"}");
    if health.get("healthy") != Some(&Json::Bool(true)) {
        return Err(format!("fresh host must be healthy: {}", health.render()));
    }
    let metrics = host.handle_line("{\"cmd\":\"metrics\"}");
    if metrics.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("metrics command failed: {}", metrics.render()));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };

    if has("--smoke") {
        match smoke() {
            Ok(()) => println!("service smoke OK"),
            Err(e) => {
                eprintln!("service smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if has("--chaos") {
        let seed: u64 = value_of("--seed").and_then(|s| s.parse().ok()).unwrap_or(7);
        let quick = !has("--full");
        let report = chaos::run_matrix(seed, quick);
        println!("{}", report.summary());
        if !report.passed() {
            for f in &report.failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        return;
    }
    let host = corpus_host();
    if let Some(addr) = value_of("--tcp") {
        eprintln!("iflex service: listening on {addr}");
        if let Err(e) = serve_tcp(&host, &addr, |a| eprintln!("iflex service: bound {a}")) {
            eprintln!("iflex service: {e}");
            std::process::exit(1);
        }
    } else {
        eprintln!("iflex service: JSON lines on stdio; send {{\"cmd\":\"shutdown\"}} to stop");
        if let Err(e) = serve_stdio(&host) {
            eprintln!("iflex service: {e}");
            std::process::exit(1);
        }
    }
}
