//! The JSON-lines wire protocol of the service.
//!
//! One request per line, one response per line. Every request is an
//! object with a `"cmd"` field; an optional client-chosen `"id"` string
//! is echoed verbatim in the response so clients can match replies.
//!
//! Responses are `{"id"?, "ok":true, ...}` on success and
//! `{"id"?, "ok":false, "error":..., "retryable":..., "retry_after_ms"?}`
//! on failure. `retryable:true` marks transient conditions — admission
//! or queue backpressure, injected transport faults — where the client
//! should back off and retry; `retry_after_ms` is the server's hint.

use crate::json::{self, Json};

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `create-session`: admit a new session, optionally with a program.
    CreateSession {
        /// Client correlation id.
        id: Option<String>,
        /// Alog program source; the host default when absent.
        program: Option<String>,
    },
    /// `ask-question`: the assistant's next unanswered questions.
    AskQuestion {
        /// Client correlation id.
        id: Option<String>,
        /// Target session.
        session: u64,
        /// How many questions to return (default 1).
        count: usize,
    },
    /// `answer`: fold a feature answer into the session's program.
    Answer {
        /// Client correlation id.
        id: Option<String>,
        /// Target session.
        session: u64,
        /// Attribute display name (`pred.var`), as returned by
        /// `ask-question`.
        attr: String,
        /// Feature name.
        feature: String,
        /// Feature value token (`yes`, `no`, `distinct-yes`, ...), a
        /// number, or free text.
        value: String,
    },
    /// `get-results`: run the session's program and return the table.
    GetResults {
        /// Client correlation id.
        id: Option<String>,
        /// Target session.
        session: u64,
        /// Row cap for the rendered table (default 10).
        limit: usize,
    },
    /// `sleep`: hold the session's worker busy for `ms` milliseconds
    /// (cancellable). A diagnostic verb for exercising backpressure and
    /// the watchdog deterministically.
    Sleep {
        /// Client correlation id.
        id: Option<String>,
        /// Target session.
        session: u64,
        /// How long to hold the worker.
        ms: u64,
    },
    /// `cancel`: cancel the session's in-flight run. Bypasses the
    /// session's job queue — that is the point.
    Cancel {
        /// Client correlation id.
        id: Option<String>,
        /// Target session.
        session: u64,
    },
    /// `close-session`: drain the session and publish its clean cache
    /// entries back to the shared core.
    CloseSession {
        /// Client correlation id.
        id: Option<String>,
        /// Target session.
        session: u64,
    },
    /// `stats`: service-level counters, or — with `"session"` — the
    /// scoped live view of one tenant (windowed request rate, queue
    /// depth, p99 ask-to-answer latency, cache hit ratio, degradation
    /// rate).
    Stats {
        /// Client correlation id.
        id: Option<String>,
        /// Scope the view to this session instead of the whole host.
        session: Option<u64>,
    },
    /// `metrics`: the full telemetry surface — lifetime counters plus
    /// every per-session windowed/quantile series — as JSON, or as
    /// Prometheus text exposition with `"format":"prometheus"`.
    Metrics {
        /// Client correlation id.
        id: Option<String>,
        /// `"json"` (default) or `"prometheus"`.
        format: Option<String>,
    },
    /// `health`: one-line SLO summary (p99 under threshold, no watchdog
    /// cancels in the last 60 s, still accepting).
    Health {
        /// Client correlation id.
        id: Option<String>,
    },
    /// `shutdown`: stop admitting, drain every session, stop.
    Shutdown {
        /// Client correlation id.
        id: Option<String>,
    },
}

impl Request {
    /// The client correlation id, when present.
    pub fn id(&self) -> Option<&str> {
        match self {
            Request::CreateSession { id, .. }
            | Request::AskQuestion { id, .. }
            | Request::Answer { id, .. }
            | Request::GetResults { id, .. }
            | Request::Sleep { id, .. }
            | Request::Cancel { id, .. }
            | Request::CloseSession { id, .. }
            | Request::Stats { id, .. }
            | Request::Metrics { id, .. }
            | Request::Health { id }
            | Request::Shutdown { id } => id.as_deref(),
        }
    }
}

/// Why a request line could not become a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description.
    pub msg: String,
    /// The correlation id, when the line parsed far enough to have one.
    pub id: Option<String>,
}

/// Decodes one request line.
pub fn decode(line: &str) -> Result<Request, DecodeError> {
    let v = json::parse(line).map_err(|e| DecodeError {
        msg: format!("invalid JSON: {e}"),
        id: None,
    })?;
    let id = v.get("id").and_then(Json::as_str).map(str::to_string);
    let fail = |msg: &str| DecodeError { msg: msg.to_string(), id: id.clone() };
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing \"cmd\""))?;
    let session = || {
        v.get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing or invalid \"session\""))
    };
    let str_field = |key: &str| {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| fail(&format!("missing \"{key}\"")))
    };
    match cmd {
        "create-session" => Ok(Request::CreateSession {
            id,
            program: v.get("program").and_then(Json::as_str).map(str::to_string),
        }),
        "ask-question" => Ok(Request::AskQuestion {
            session: session()?,
            count: v.get("count").and_then(Json::as_u64).unwrap_or(1).max(1) as usize,
            id,
        }),
        "answer" => Ok(Request::Answer {
            session: session()?,
            attr: str_field("attr")?,
            feature: str_field("feature")?,
            value: str_field("value")?,
            id,
        }),
        "get-results" => Ok(Request::GetResults {
            session: session()?,
            limit: v.get("limit").and_then(Json::as_u64).unwrap_or(10).max(1) as usize,
            id,
        }),
        "sleep" => Ok(Request::Sleep {
            session: session()?,
            ms: v
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("missing or invalid \"ms\""))?,
            id,
        }),
        "cancel" => Ok(Request::Cancel { session: session()?, id }),
        "close-session" => Ok(Request::CloseSession { session: session()?, id }),
        "stats" => Ok(Request::Stats {
            session: v.get("session").and_then(Json::as_u64),
            id,
        }),
        "metrics" => Ok(Request::Metrics {
            format: v.get("format").and_then(Json::as_str).map(str::to_string),
            id,
        }),
        "health" => Ok(Request::Health { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(fail(&format!("unknown cmd {other:?}"))),
    }
}

/// A success response; `fields` follow the echoed id and `"ok":true`.
pub fn ok_response(id: Option<&str>, fields: Vec<(&str, Json)>) -> Json {
    let mut pairs: Vec<(&str, Json)> = Vec::with_capacity(fields.len() + 2);
    if let Some(id) = id {
        pairs.push(("id", Json::str(id)));
    }
    pairs.push(("ok", Json::Bool(true)));
    pairs.extend(fields);
    Json::obj(pairs)
}

/// A failure response. `retry_after_ms` marks the failure transient and
/// carries the backoff hint.
pub fn err_response(id: Option<&str>, error: &str, retry_after_ms: Option<u64>) -> Json {
    let mut pairs: Vec<(&str, Json)> = Vec::with_capacity(5);
    if let Some(id) = id {
        pairs.push(("id", Json::str(id)));
    }
    pairs.push(("ok", Json::Bool(false)));
    pairs.push(("error", Json::str(error)));
    pairs.push(("retryable", Json::Bool(retry_after_ms.is_some())));
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms", Json::num(ms)));
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_every_command() {
        let r = decode(r#"{"cmd":"create-session","id":"a","program":"q(x) :- t(x)."}"#).unwrap();
        assert_eq!(
            r,
            Request::CreateSession {
                id: Some("a".into()),
                program: Some("q(x) :- t(x).".into())
            }
        );
        assert_eq!(
            decode(r#"{"cmd":"ask-question","session":2}"#).unwrap(),
            Request::AskQuestion { id: None, session: 2, count: 1 }
        );
        assert_eq!(
            decode(
                r#"{"cmd":"answer","session":2,"attr":"extractTitle.t","feature":"bold-font","value":"yes"}"#
            )
            .unwrap(),
            Request::Answer {
                id: None,
                session: 2,
                attr: "extractTitle.t".into(),
                feature: "bold-font".into(),
                value: "yes".into()
            }
        );
        assert_eq!(
            decode(r#"{"cmd":"get-results","session":2,"limit":3}"#).unwrap(),
            Request::GetResults { id: None, session: 2, limit: 3 }
        );
        assert_eq!(
            decode(r#"{"cmd":"sleep","session":2,"ms":50}"#).unwrap(),
            Request::Sleep { id: None, session: 2, ms: 50 }
        );
        assert_eq!(
            decode(r#"{"cmd":"cancel","session":2}"#).unwrap(),
            Request::Cancel { id: None, session: 2 }
        );
        assert_eq!(
            decode(r#"{"cmd":"close-session","session":2}"#).unwrap(),
            Request::CloseSession { id: None, session: 2 }
        );
        assert_eq!(
            decode(r#"{"cmd":"stats"}"#).unwrap(),
            Request::Stats { id: None, session: None }
        );
        assert_eq!(
            decode(r#"{"cmd":"stats","session":3}"#).unwrap(),
            Request::Stats { id: None, session: Some(3) }
        );
        assert_eq!(
            decode(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics { id: None, format: None }
        );
        assert_eq!(
            decode(r#"{"cmd":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics { id: None, format: Some("prometheus".into()) }
        );
        assert_eq!(decode(r#"{"cmd":"health"}"#).unwrap(), Request::Health { id: None });
        assert_eq!(decode(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown { id: None });
    }

    #[test]
    fn decode_errors_keep_the_id() {
        let e = decode(r#"{"id":"x7","cmd":"ask-question"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x7"));
        assert!(e.msg.contains("session"));
        let e = decode("not json").unwrap_err();
        assert_eq!(e.id, None);
        let e = decode(r#"{"id":"q","cmd":"frobnicate"}"#).unwrap_err();
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(Some("a"), vec![("session", Json::num(4))]);
        assert_eq!(ok.render(), r#"{"id":"a","ok":true,"session":4}"#);
        let err = err_response(None, "full", Some(25));
        assert_eq!(
            err.render(),
            r#"{"ok":false,"error":"full","retryable":true,"retry_after_ms":25}"#
        );
        let fatal = err_response(Some("b"), "no such session", None);
        assert_eq!(
            fatal.render(),
            r#"{"id":"b","ok":false,"error":"no such session","retryable":false}"#
        );
    }
}
