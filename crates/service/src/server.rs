//! Transports: JSON-lines over stdio or TCP, one request per line.
//!
//! The transport is deliberately thin — all policy lives in the
//! [`Host`]. What the transport does own is its two fault sites:
//! `service.request_decode` (a fired fault poisons the incoming line,
//! modelling a corrupted read) and `service.response_write` (a fired
//! fault makes the write transiently fail; the server retries with
//! exponential backoff before giving the response up as lost — the
//! client's retry, keyed by its request `id`, recovers).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::time::Duration;

use crate::host::Host;
use crate::json::Json;
use crate::protocol::err_response;
use iflex_engine::fault;

/// How many write attempts (first try + retries) a response gets.
const WRITE_ATTEMPTS: u32 = 4;

/// Serves one connection's request lines until EOF or `shutdown`.
/// Returns `true` when the loop ended because of a `shutdown` request
/// (the caller should stop accepting).
pub fn serve_lines<R: BufRead, W: Write>(host: &Host, input: R, mut out: W) -> io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // A Prometheus scraper speaks HTTP, not JSON-lines: answer a
        // raw `GET /metrics` request line with one complete HTTP
        // response and close the connection (scrapes are one-shot).
        if line.starts_with("GET /metrics") {
            write_exposition(host, &mut out)?;
            return Ok(false);
        }
        let resp = if host.fault().hit(fault::site::REQUEST_DECODE).is_some() {
            // The read "corrupted" this request: report it as retryable
            // so the client resends; the request itself is never
            // executed (no partial effects to undo).
            host.counters().decode_faults.inc();
            err_response(None, "transient decode failure, resend", Some(10))
        } else {
            host.handle_line(&line)
        };
        let is_shutdown = line.contains("\"shutdown\"") && resp.get("ok") == Some(&Json::Bool(true));
        write_response(host, &mut out, &resp)?;
        if is_shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Writes the Prometheus text exposition as one HTTP/1.1 response.
fn write_exposition<W: Write>(host: &Host, out: &mut W) -> io::Result<()> {
    let body = host.render_prometheus();
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.write_all(header.as_bytes())?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// Writes one response line, retrying injected transient write faults
/// with exponential backoff (1ms, 2ms, 4ms). Real `io::Error`s from the
/// sink still propagate — a closed pipe is not transient.
fn write_response<W: Write>(host: &Host, out: &mut W, resp: &Json) -> io::Result<()> {
    let mut backoff = Duration::from_millis(1);
    for attempt in 0..WRITE_ATTEMPTS {
        if host.fault().hit(fault::site::RESPONSE_WRITE).is_some() {
            host.counters().write_faults.inc();
            if attempt + 1 == WRITE_ATTEMPTS {
                // Response lost; the connection survives. Clients match
                // replies by id and re-ask after a timeout.
                host.counters().responses_lost.inc();
                return Ok(());
            }
            std::thread::sleep(backoff);
            backoff *= 2;
            continue;
        }
        out.write_all(resp.render().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        return Ok(());
    }
    Ok(())
}

/// Serves stdin/stdout until EOF or `shutdown`.
pub fn serve_stdio(host: &Host) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(host, stdin.lock(), stdout.lock()).map(|_| ())
}

/// Serves TCP connections on `addr` (e.g. `127.0.0.1:7878`), one at a
/// time, until a connection issues `shutdown`. Returns the bound local
/// address via `on_bound` before accepting (tests use an OS-assigned
/// port).
pub fn serve_tcp(host: &Host, addr: &str, on_bound: impl FnOnce(std::net::SocketAddr)) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    for conn in listener.incoming() {
        let conn = match conn {
            Ok(c) => c,
            Err(_) => continue,
        };
        let reader = BufReader::new(conn.try_clone()?);
        match serve_lines(host, reader, conn) {
            Ok(true) => break,
            Ok(false) => {}
            // One broken connection must not take the listener down.
            Err(_) => continue,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::ServiceConfig;
    use crate::json;
    use iflex_engine::{Fault, FaultPlan, Trigger};

    fn host() -> Host {
        Host::new(
            crate::fixture::tiny_core(),
            crate::fixture::PROGRAM,
            ServiceConfig::default(),
        )
    }

    fn run_transcript(host: &Host, lines: &str) -> Vec<Json> {
        let mut out = Vec::new();
        serve_lines(host, lines.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn end_to_end_transcript() {
        let host = host();
        let responses = run_transcript(
            &host,
            "{\"cmd\":\"create-session\",\"id\":\"a\"}\n\
             \n\
             {\"cmd\":\"get-results\",\"session\":1,\"limit\":4}\n\
             {\"cmd\":\"stats\"}\n\
             {\"cmd\":\"shutdown\"}\n\
             {\"cmd\":\"stats\"}\n",
        );
        // The blank line is skipped; shutdown ends the loop, so the
        // trailing stats is never answered.
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("a"));
        assert_eq!(responses[1].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(responses[2].get("sessions").and_then(Json::as_u64), Some(1));
        assert_eq!(responses[3].get("drained_sessions").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_loop_survives() {
        let host = host();
        let responses = run_transcript(
            &host,
            "this is not json\n\
             {\"cmd\":\"nope\",\"id\":\"z\"}\n\
             {\"cmd\":\"stats\"}\n",
        );
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(responses[1].get("id").and_then(Json::as_str), Some("z"));
        assert_eq!(responses[2].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn decode_fault_rejects_without_executing() {
        let host = host();
        host.fault().arm(
            iflex_engine::fault::site::REQUEST_DECODE,
            Trigger::Nth(0),
            Fault::Io("corrupt".into()),
            3,
        );
        let responses = run_transcript(
            &host,
            "{\"cmd\":\"create-session\"}\n\
             {\"cmd\":\"create-session\"}\n",
        );
        // First create was swallowed by the decode fault (retryable),
        // second went through — exactly one session exists.
        assert_eq!(responses[0].get("retryable"), Some(&Json::Bool(true)));
        assert_eq!(responses[1].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(host.active_sessions(), 1);
    }

    #[test]
    fn transient_write_fault_is_retried_and_response_arrives() {
        let host = host();
        host.fault().arm(
            iflex_engine::fault::site::RESPONSE_WRITE,
            Trigger::Nth(0),
            Fault::Io("flaky".into()),
            3,
        );
        let responses = run_transcript(&host, "{\"cmd\":\"stats\"}\n");
        assert_eq!(responses.len(), 1, "retry must deliver the response");
        assert_eq!(host.metrics().counter_value("service.write_faults"), Some(1));
        // Counters are pre-registered at host construction, so an
        // untouched one reads zero rather than absent.
        assert_eq!(host.metrics().counter_value("service.responses_lost"), Some(0));
    }

    #[test]
    fn persistent_write_fault_drops_the_response_but_not_the_connection() {
        let host = host();
        let plan: &FaultPlan = host.fault();
        plan.arm(
            iflex_engine::fault::site::RESPONSE_WRITE,
            Trigger::Always,
            Fault::Io("dead".into()),
            3,
        );
        let responses = run_transcript(&host, "{\"cmd\":\"stats\"}\n{\"cmd\":\"stats\"}\n");
        assert!(responses.is_empty(), "all responses lost");
        assert_eq!(host.metrics().counter_value("service.responses_lost"), Some(2));
        // The host itself is still healthy.
        plan.disarm_all();
        let responses = run_transcript(&host, "{\"cmd\":\"stats\"}\n");
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn get_metrics_line_answers_with_http_exposition() {
        let host = host();
        let mut out = Vec::new();
        serve_lines(
            &host,
            "{\"cmd\":\"create-session\"}\n".as_bytes(),
            &mut Vec::new(),
        )
        .unwrap();
        let done = serve_lines(&host, "GET /metrics HTTP/1.1\n".as_bytes(), &mut out).unwrap();
        assert!(!done, "a scrape is not a shutdown");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
        assert!(text.contains("Content-Type: text/plain"));
        let body = text.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("iflex_service_requests"));
        assert!(body.contains("iflex_session_ask_to_answer_us{session=\"1\",quantile=\"0.99\"}"));
        // The advertised length matches the body exactly.
        let len: usize = text
            .lines()
            .find(|l| l.starts_with("Content-Length: "))
            .and_then(|l| l.trim_start_matches("Content-Length: ").trim().parse().ok())
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn tcp_roundtrip() {
        use std::io::{BufRead, BufReader, Write};
        let host = std::sync::Arc::new(host());
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let host = std::sync::Arc::clone(&host);
            std::thread::spawn(move || {
                serve_tcp(&host, "127.0.0.1:0", move |a| {
                    let _ = addr_tx.send(a);
                })
            })
        };
        let addr = addr_rx.recv().unwrap();
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"cmd\":\"create-session\",\"id\":\"t\"}\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("t"));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        conn.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("drained_sessions"));
        server.join().unwrap().unwrap();
    }
}
