//! The multi-session host: one shared [`EngineCore`], many isolated
//! session workers.
//!
//! Every session runs on its own worker thread behind a **bounded** job
//! queue — the bulkhead. Sessions share the immutable document store,
//! the feature memo, and the warm incremental cache through the core
//! (all read-only or pure), while everything isolation-relevant — fault
//! plan, budget, cancel token, clock, metrics, tracer — is per fork.
//! A panicking, degrading, or budget-exhausted session is contained to
//! its own worker; siblings keep producing byte-identical results.
//!
//! Resilience policy:
//! - **Admission control**: at most `max_sessions` live sessions; past
//!   the cap `create-session` is rejected with `retry_after_ms`, never
//!   queued.
//! - **Backpressure**: each session's queue holds `queue_depth` jobs;
//!   a full queue rejects with `retry_after_ms` instead of buffering
//!   without bound.
//! - **Watchdog**: a background thread cancels (via the session's
//!   [`CancelToken`]) any run that exceeds `stuck_limit`; the engine
//!   degrades the rest of that run cooperatively.
//! - **Graceful shutdown**: stop admitting, drain queued jobs, publish
//!   each clean session's cache entries back to the core, join workers.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::protocol::{decode, err_response, ok_response, Request};
use iflex_alog::{parse_program, Program};
use iflex_assistant::{add_constraint, attributes, ordered_questions, AssistContext};
use iflex_engine::obs::metrics::names;
use iflex_engine::obs::{
    Counter, FlightRecorder, LiveSet, QuantileSketch, Registry, SpanId, SpanKind, Tracer, Window,
};
use iflex_engine::{fault, CancelToken, Engine, EngineCore, Fault, FaultPlan, Sample, Trigger};
use iflex_features::{FeatureArg, FeatureValue};

/// Bound on retained flight-recorder dumps (oldest evicted first).
const MAX_FLIGHT_DUMPS: usize = 32;

/// Host tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission cap: live sessions past this are rejected.
    pub max_sessions: usize,
    /// Bound of each session's job queue (backpressure past it).
    pub queue_depth: usize,
    /// Backoff hint attached to admission/backpressure rejections.
    pub retry_after_ms: u64,
    /// Wall-clock deadline applied to every engine run.
    pub run_deadline: Option<Duration>,
    /// How often the watchdog scans for stuck runs.
    pub watchdog_interval: Duration,
    /// A job older than this is cancelled by the watchdog.
    pub stuck_limit: Duration,
    /// Transient session-spawn failures tolerated before giving up.
    pub spawn_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Whether live telemetry (sliding windows, quantile sketches, the
    /// flight recorder) records. Off, every probe is one relaxed atomic
    /// load.
    pub telemetry: bool,
    /// Per-session flight-recorder ring capacity (0 = library default).
    pub flight_capacity: usize,
    /// Whether session engines run σ/constraint passes over the columnar
    /// core (DESIGN.md §14). Results are byte-identical either way — this
    /// is the fleet-wide ablation switch for `Limits::use_columnar`.
    pub use_columnar: bool,
    /// When set, every flight dump is also written to this directory as
    /// `flight-<session>-<seq>-<reason>.jsonl`. Dumps are always kept
    /// in memory regardless (see [`Host::flight_dumps`]).
    pub flight_dir: Option<PathBuf>,
    /// SLO threshold the `health` verdict holds the host to: p99
    /// ask-to-answer latency must stay under this many milliseconds.
    pub slo_p99_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_sessions: 8,
            queue_depth: 4,
            retry_after_ms: 25,
            run_deadline: Some(Duration::from_secs(10)),
            watchdog_interval: Duration::from_millis(20),
            stuck_limit: Duration::from_secs(2),
            spawn_retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            telemetry: true,
            flight_capacity: 0,
            use_columnar: true,
            flight_dir: None,
            slo_p99_ms: 1_000,
        }
    }
}

/// Cached handles to every service-layer counter, resolved once at host
/// construction — the request hot path never re-resolves a counter by
/// name (the same pattern the engine's internal counter cache uses).
pub(crate) struct ServiceCounters {
    pub requests: Counter,
    pub decode_errors: Counter,
    pub sessions_created: Counter,
    pub rejected_admission: Counter,
    pub rejected_backpressure: Counter,
    pub spawn_failures: Counter,
    pub cancels: Counter,
    pub worker_panics: Counter,
    pub watchdog_cancels: Counter,
    pub publishes: Counter,
    pub publish_skipped: Counter,
    pub cache_share_faults: Counter,
    pub decode_faults: Counter,
    pub write_faults: Counter,
    pub responses_lost: Counter,
    pub flight_dumps: Counter,
}

impl ServiceCounters {
    fn new(reg: &Registry) -> ServiceCounters {
        ServiceCounters {
            requests: reg.counter("service.requests"),
            decode_errors: reg.counter("service.decode_errors"),
            sessions_created: reg.counter("service.sessions_created"),
            rejected_admission: reg.counter("service.rejected_admission"),
            rejected_backpressure: reg.counter("service.rejected_backpressure"),
            spawn_failures: reg.counter("service.spawn_failures"),
            cancels: reg.counter("service.cancels"),
            worker_panics: reg.counter("service.worker_panics"),
            watchdog_cancels: reg.counter("service.watchdog_cancels"),
            publishes: reg.counter("service.publishes"),
            publish_skipped: reg.counter("service.publish_skipped"),
            cache_share_faults: reg.counter("service.cache_share_faults"),
            decode_faults: reg.counter("service.decode_faults"),
            write_faults: reg.counter("service.write_faults"),
            responses_lost: reg.counter("service.responses_lost"),
            flight_dumps: reg.counter("service.flight_dumps"),
        }
    }
}

/// Host-wide live-telemetry surface: request rate and ask-to-answer
/// latency across every session, plus the watchdog-cancel window the
/// `health` verdict reads.
struct HostTelemetry {
    requests: Window,
    latency_us_win: Window,
    latency_us: QuantileSketch,
    watchdog_cancels: Window,
}

impl HostTelemetry {
    fn new(on: bool) -> HostTelemetry {
        // The handles keep the set's shared enabled flag alive; the set
        // itself need not outlive construction.
        let live = if on { LiveSet::enabled() } else { LiveSet::disabled() };
        HostTelemetry {
            requests: live.window("service.requests"),
            latency_us_win: live.window("service.ask_to_answer_us"),
            latency_us: live.sketch("service.ask_to_answer_us"),
            watchdog_cancels: live.window("service.watchdog_cancels"),
        }
    }
}

/// One session's live-telemetry surface. Every handle is resolved once
/// at spawn and shared with the worker; `live` is the *same* set the
/// session's engine records its run latency, degradation, and
/// shard-busy series into, so the scoped `stats` view reads engine-side
/// telemetry without crossing the bulkhead.
pub(crate) struct SessionTelemetry {
    live: LiveSet,
    requests: Window,
    latency_us_win: Window,
    latency_us: QuantileSketch,
    cache_hits: Window,
    cache_misses: Window,
    degradations: Window,
    /// Jobs accepted but not yet picked up by the worker.
    queued: AtomicU64,
    flight: FlightRecorder,
}

impl SessionTelemetry {
    fn new(on: bool, flight_cap: usize) -> SessionTelemetry {
        let live = if on { LiveSet::enabled() } else { LiveSet::disabled() };
        let flight =
            if on { FlightRecorder::new(flight_cap) } else { FlightRecorder::disabled() };
        SessionTelemetry {
            requests: live.window("service.requests"),
            latency_us_win: live.window("service.ask_to_answer_us"),
            latency_us: live.sketch("service.ask_to_answer_us"),
            cache_hits: live.window("service.cache_hits"),
            cache_misses: live.window("service.cache_misses"),
            degradations: live.window(names::DEGRADATIONS),
            queued: AtomicU64::new(0),
            flight,
            live,
        }
    }
}

/// One captured flight-recorder dump — the post-mortem record of a
/// watchdog cancel, worker panic, or degraded run.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The victim session.
    pub session: u64,
    /// What triggered the dump (`"watchdog_cancel"`, `"worker_panic"`,
    /// `"degradation"`).
    pub reason: String,
    /// The JSONL payload: a header line, then one line per event.
    pub jsonl: String,
}

/// One queued unit of session work: the request plus its reply slot.
struct Job {
    req: Request,
    reply: SyncSender<Json>,
}

/// The host side of a live session.
struct SessionHandle {
    tx: SyncSender<Job>,
    worker: Option<JoinHandle<()>>,
    cancel: CancelToken,
    engine_fault: Arc<FaultPlan>,
    running_since: Arc<Mutex<Option<Instant>>>,
    published: Arc<AtomicBool>,
    span: SpanId,
    telemetry: Arc<SessionTelemetry>,
}

struct Inner {
    core: Arc<EngineCore>,
    cfg: ServiceConfig,
    sessions: Mutex<BTreeMap<u64, SessionHandle>>,
    next_id: AtomicU64,
    accepting: AtomicBool,
    stop: AtomicBool,
    /// Service-layer fault plan: session-spawn, request-decode,
    /// response-write, cache-share probes.
    fault: Arc<FaultPlan>,
    metrics: Registry,
    counters: ServiceCounters,
    telemetry: HostTelemetry,
    /// Retained flight dumps, oldest first, capped at
    /// [`MAX_FLIGHT_DUMPS`].
    dumps: Mutex<Vec<FlightDump>>,
    dump_seq: AtomicU64,
    tracer: Tracer,
    default_program: String,
}

/// The multi-session service host. Cheap to share behind `&`; all
/// methods take `&self`.
pub struct Host {
    inner: Arc<Inner>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

/// Worker-thread state for one session (never crosses the bulkhead).
struct SessionState {
    engine: Engine,
    program: Program,
    asked: BTreeSet<(String, String)>,
    poisoned: bool,
}

impl Host {
    /// Builds a host over a shared core with the given default program.
    pub fn new(core: EngineCore, default_program: &str, cfg: ServiceConfig) -> Host {
        let metrics = Registry::new();
        let counters = ServiceCounters::new(&metrics);
        let telemetry = HostTelemetry::new(cfg.telemetry);
        let inner = Arc::new(Inner {
            core: Arc::new(core),
            cfg,
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            accepting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            fault: Arc::new(FaultPlan::disarmed()),
            metrics,
            counters,
            telemetry,
            dumps: Mutex::new(Vec::new()),
            dump_seq: AtomicU64::new(0),
            tracer: Tracer::disabled(),
            default_program: default_program.to_string(),
        });
        let watchdog = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("iflex-watchdog".into())
                .spawn(move || watchdog_loop(&inner))
                .ok()
        };
        Host { inner, watchdog: Mutex::new(watchdog) }
    }

    /// The service-layer fault plan (spawn/decode/write/cache-share
    /// sites). Arm it to chaos-test the host itself.
    pub fn fault(&self) -> &Arc<FaultPlan> {
        &self.inner.fault
    }

    /// The service metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }

    /// The cached service counter handles (hot-path increments go
    /// through these, never through a by-name registry lookup).
    pub(crate) fn counters(&self) -> &ServiceCounters {
        &self.inner.counters
    }

    /// Flight-recorder dumps captured so far (watchdog cancels, worker
    /// panics, degraded runs), oldest first.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.inner.dumps.lock().expect("dumps lock").clone()
    }

    /// Enables per-session tracing spans on the host tracer.
    pub fn enable_tracing(&self) -> &Tracer {
        self.inner.tracer.enable();
        &self.inner.tracer
    }

    /// Live session count.
    pub fn active_sessions(&self) -> usize {
        self.inner.sessions.lock().expect("sessions lock").len()
    }

    /// True until shutdown begins.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::Acquire)
    }

    /// Arms a fault on one session's *engine* plan (bulkhead-internal
    /// sites: eval-rule, join-tuple, memo-lookup, ...). Returns false
    /// when the session does not exist.
    pub fn arm_session(
        &self,
        session: u64,
        site: &'static str,
        trigger: Trigger,
        fault_kind: Fault,
        seed: u64,
    ) -> bool {
        let sessions = self.inner.sessions.lock().expect("sessions lock");
        match sessions.get(&session) {
            Some(h) => {
                h.engine_fault.arm(site, trigger, fault_kind, seed);
                true
            }
            None => false,
        }
    }

    /// Decodes one request line and handles it. Decode failures become
    /// non-retryable error responses (a malformed line will not improve
    /// on retry).
    pub fn handle_line(&self, line: &str) -> Json {
        match decode(line) {
            Ok(req) => self.handle(req),
            Err(e) => {
                self.inner.counters.decode_errors.inc();
                err_response(e.id.as_deref(), &e.msg, None)
            }
        }
    }

    /// Handles one decoded request.
    pub fn handle(&self, req: Request) -> Json {
        self.inner.counters.requests.inc();
        self.inner.telemetry.requests.add_count(1);
        let id = req.id().map(str::to_string);
        let id = id.as_deref();
        match req {
            Request::CreateSession { program, .. } => self.create_session(id, program.as_deref()),
            Request::Cancel { session, .. } => {
                let sessions = self.inner.sessions.lock().expect("sessions lock");
                match sessions.get(&session) {
                    Some(h) => {
                        h.cancel.cancel();
                        self.inner.counters.cancels.inc();
                        if h.telemetry.flight.is_enabled() {
                            h.telemetry.flight.record("cancel", "client", "");
                        }
                        ok_response(id, vec![("cancelled", Json::Bool(true))])
                    }
                    None => err_response(id, &format!("no such session {session}"), None),
                }
            }
            Request::CloseSession { session, .. } => self.close_session(id, session),
            Request::Stats { session: Some(session), .. } => self.session_stats(id, session),
            Request::Stats { session: None, .. } => self.stats(id),
            Request::Metrics { format, .. } => self.metrics_cmd(id, format.as_deref()),
            Request::Health { .. } => self.health(id),
            Request::Shutdown { .. } => {
                let drained = self.shutdown();
                ok_response(id, vec![("drained_sessions", Json::num(drained as u64))])
            }
            req @ (Request::AskQuestion { .. }
            | Request::Answer { .. }
            | Request::GetResults { .. }
            | Request::Sleep { .. }) => {
                let session = match req {
                    Request::AskQuestion { session, .. }
                    | Request::Answer { session, .. }
                    | Request::GetResults { session, .. }
                    | Request::Sleep { session, .. } => session,
                    _ => unreachable!(),
                };
                match self.submit(session, req) {
                    Ok(rx) => rx.recv().unwrap_or_else(|_| {
                        err_response(id, "session worker died before replying", None)
                    }),
                    Err(resp) => resp,
                }
            }
        }
    }

    /// Enqueues a session-targeted request without waiting for the
    /// reply. `Err` carries the ready-to-send rejection (unknown
    /// session, or queue full — the backpressure path).
    pub fn submit(&self, session: u64, req: Request) -> Result<Receiver<Json>, Json> {
        let id = req.id().map(str::to_string);
        let (tx, tel) = {
            let sessions = self.inner.sessions.lock().expect("sessions lock");
            match sessions.get(&session) {
                Some(h) => (h.tx.clone(), Arc::clone(&h.telemetry)),
                None => {
                    return Err(err_response(
                        id.as_deref(),
                        &format!("no such session {session}"),
                        None,
                    ))
                }
            }
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        // The queue-depth gauge rises before the send so the worker's
        // matching decrement (at dequeue) can never race it below zero.
        tel.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Job { req, reply: reply_tx }) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => {
                tel.queued.fetch_sub(1, Ordering::Relaxed);
                self.inner.counters.rejected_backpressure.inc();
                if tel.flight.is_enabled() {
                    tel.flight.record("reject", "backpressure", "queue full");
                }
                Err(err_response(
                    id.as_deref(),
                    &format!("session {session} queue full"),
                    Some(self.inner.cfg.retry_after_ms),
                ))
            }
            Err(TrySendError::Disconnected(_)) => {
                tel.queued.fetch_sub(1, Ordering::Relaxed);
                Err(err_response(id.as_deref(), &format!("session {session} worker died"), None))
            }
        }
    }

    fn create_session(&self, id: Option<&str>, program: Option<&str>) -> Json {
        let inner = &self.inner;
        if !self.is_accepting() {
            return err_response(id, "service is shutting down", None);
        }
        let source = program.unwrap_or(&inner.default_program).to_string();
        let parsed = match parse_program(&source) {
            Ok(p) => p,
            Err(e) => return err_response(id, &format!("program parse error: {e}"), None),
        };
        // Admission control: check the cap while holding the table lock
        // so concurrent creates cannot oversubscribe.
        {
            let sessions = inner.sessions.lock().expect("sessions lock");
            if sessions.len() >= inner.cfg.max_sessions {
                inner.counters.rejected_admission.inc();
                return err_response(
                    id,
                    &format!("session table full ({} live)", sessions.len()),
                    Some(inner.cfg.retry_after_ms),
                );
            }
        }
        // Session spawn, with exponential backoff across transient
        // failures (an injected fault at the spawn site models thread
        // or resource exhaustion; the fault is consumed, not raised).
        let mut attempt = 0u32;
        let spawned = loop {
            match self.try_spawn(parsed.clone()) {
                Ok(s) => break Some(s),
                Err(transient) => {
                    inner.counters.spawn_failures.inc();
                    if !transient || attempt >= inner.cfg.spawn_retries {
                        break None;
                    }
                    let backoff = inner
                        .cfg
                        .backoff_base
                        .saturating_mul(1 << attempt.min(16))
                        .min(inner.cfg.backoff_cap);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        };
        let Some((session_id, warm)) = spawned else {
            return err_response(
                id,
                "session spawn failed after retries",
                Some(inner.cfg.retry_after_ms),
            );
        };
        inner.counters.sessions_created.inc();
        ok_response(
            id,
            vec![
                ("session", Json::num(session_id)),
                ("warm_entries", Json::num(warm as u64)),
            ],
        )
    }

    /// One spawn attempt. `Err(true)` is transient (retry makes sense);
    /// `Err(false)` is permanent.
    fn try_spawn(&self, program: Program) -> Result<(u64, usize), bool> {
        let inner = &self.inner;
        if inner.fault.hit(fault::site::SESSION_SPAWN).is_some() {
            return Err(true);
        }
        let mut engine = inner.core.fork();
        let mut warm = inner.core.warm_entries();
        // Cache hand-off probe: a fault here degrades the new session to
        // a cold cache instead of failing the spawn — the bulkhead keeps
        // working, it just recomputes.
        if inner.fault.hit(fault::site::CACHE_SHARE).is_some() {
            inner.counters.cache_share_faults.inc();
            engine.clear_cache();
            warm = 0;
        }
        engine.budget.deadline = inner.cfg.run_deadline;
        engine.limits.use_columnar = inner.cfg.use_columnar;
        let cancel = engine.budget.cancel_token();
        let engine_fault = Arc::clone(&engine.fault);
        let session_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let span = inner.tracer.begin(SpanId::NONE, SpanKind::Session, &format!("tenant{session_id}"));
        engine.tracer = inner.tracer.clone();
        engine.trace_parent = span;
        // The session's telemetry surface shares its live set and flight
        // recorder with the engine: the engine's run-latency, degradation,
        // and shard-busy series land in the same per-tenant scope the
        // `stats {session}` view reads.
        let telemetry = Arc::new(SessionTelemetry::new(
            inner.cfg.telemetry,
            inner.cfg.flight_capacity,
        ));
        engine.live = telemetry.live.clone();
        engine.flight = telemetry.flight.clone();
        if telemetry.flight.is_enabled() {
            telemetry.flight.record("session", "create", format!("warm_entries={warm}"));
        }
        let running_since = Arc::new(Mutex::new(None));
        let published = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<Job>(inner.cfg.queue_depth);
        let state = SessionState { engine, program, asked: BTreeSet::new(), poisoned: false };
        let worker = {
            let inner = Arc::clone(inner);
            let running_since = Arc::clone(&running_since);
            let published = Arc::clone(&published);
            let cancel = cancel.clone();
            let telemetry = Arc::clone(&telemetry);
            std::thread::Builder::new()
                .name(format!("iflex-session-{session_id}"))
                .spawn(move || {
                    worker_loop(
                        &inner,
                        session_id,
                        state,
                        rx,
                        &running_since,
                        &published,
                        &cancel,
                        span,
                        &telemetry,
                    )
                })
                .map_err(|_| true)?
        };
        let handle = SessionHandle {
            tx,
            worker: Some(worker),
            cancel,
            engine_fault,
            running_since,
            published,
            span,
            telemetry,
        };
        inner.sessions.lock().expect("sessions lock").insert(session_id, handle);
        Ok((session_id, warm))
    }

    fn close_session(&self, id: Option<&str>, session: u64) -> Json {
        let handle = {
            let mut sessions = self.inner.sessions.lock().expect("sessions lock");
            sessions.remove(&session)
        };
        let Some(mut handle) = handle else {
            return err_response(id, &format!("no such session {session}"), None);
        };
        // Dropping the sender ends the worker's receive loop once the
        // queued jobs drain; the worker publishes on its way out.
        drop(handle.tx);
        if let Some(w) = handle.worker.take() {
            let _ = w.join();
        }
        self.inner.tracer.end(handle.span);
        ok_response(
            id,
            vec![
                ("closed", Json::Bool(true)),
                ("published", Json::Bool(handle.published.load(Ordering::Acquire))),
            ],
        )
    }

    fn stats(&self, id: Option<&str>) -> Json {
        let inner = &self.inner;
        let live = self.active_sessions() as u64;
        let c = |c: &Counter| Json::num(c.get());
        let k = &inner.counters;
        let [r1, r10, r60] = inner.telemetry.requests.horizons();
        let lat = inner.telemetry.latency_us.summary();
        ok_response(
            id,
            vec![
                ("sessions", Json::num(live)),
                ("max_sessions", Json::num(inner.cfg.max_sessions as u64)),
                ("accepting", Json::Bool(self.is_accepting())),
                ("created", c(&k.sessions_created)),
                ("rejected_admission", c(&k.rejected_admission)),
                ("rejected_backpressure", c(&k.rejected_backpressure)),
                ("spawn_failures", c(&k.spawn_failures)),
                ("decode_errors", c(&k.decode_errors)),
                ("worker_panics", c(&k.worker_panics)),
                ("watchdog_cancels", c(&k.watchdog_cancels)),
                ("publishes", c(&k.publishes)),
                ("publish_skipped", c(&k.publish_skipped)),
                ("warm_entries", Json::num(inner.core.warm_entries() as u64)),
                ("requests", c(&k.requests)),
                ("flight_dumps", c(&k.flight_dumps)),
                ("requests_1s", Json::Num(r1.rate())),
                ("requests_10s", Json::Num(r10.rate())),
                ("requests_60s", Json::Num(r60.rate())),
                ("latency_p50_us", Json::Num(lat.p50)),
                ("latency_p95_us", Json::Num(lat.p95)),
                ("latency_p99_us", Json::Num(lat.p99)),
            ],
        )
    }

    /// The scoped live view of one tenant.
    fn session_stats(&self, id: Option<&str>, session: u64) -> Json {
        let tel = {
            let sessions = self.inner.sessions.lock().expect("sessions lock");
            match sessions.get(&session) {
                Some(h) => Arc::clone(&h.telemetry),
                None => return err_response(id, &format!("no such session {session}"), None),
            }
        };
        let mut fields = vec![("session", Json::num(session))];
        fields.extend(session_view(&tel));
        ok_response(id, fields)
    }

    /// The `metrics` command: lifetime counters plus every per-session
    /// live series, as JSON or Prometheus text exposition.
    fn metrics_cmd(&self, id: Option<&str>, format: Option<&str>) -> Json {
        match format {
            Some("prometheus") => ok_response(
                id,
                vec![
                    ("format", Json::str("prometheus")),
                    ("exposition", Json::str(self.render_prometheus())),
                ],
            ),
            Some("json") | None => {
                let snap = self.inner.metrics.snapshot();
                let counters = Json::Obj(
                    snap.counters.iter().map(|(k, v)| (k.clone(), Json::num(*v))).collect(),
                );
                let sessions: Vec<Json> = {
                    let table = self.inner.sessions.lock().expect("sessions lock");
                    table
                        .iter()
                        .map(|(sid, h)| {
                            let mut fields = vec![("session", Json::num(*sid))];
                            fields.extend(session_view(&h.telemetry));
                            Json::obj(fields)
                        })
                        .collect()
                };
                let [r1, r10, r60] = self.inner.telemetry.requests.horizons();
                let lat = self.inner.telemetry.latency_us.summary();
                ok_response(
                    id,
                    vec![
                        ("telemetry", Json::Bool(self.inner.cfg.telemetry)),
                        ("counters", counters),
                        ("requests_1s", Json::Num(r1.rate())),
                        ("requests_10s", Json::Num(r10.rate())),
                        ("requests_60s", Json::Num(r60.rate())),
                        ("latency_p50_us", Json::Num(lat.p50)),
                        ("latency_p95_us", Json::Num(lat.p95)),
                        ("latency_p99_us", Json::Num(lat.p99)),
                        ("sessions", Json::Arr(sessions)),
                    ],
                )
            }
            Some(other) => err_response(id, &format!("unknown metrics format {other:?}"), None),
        }
    }

    /// The `health` command: one SLO verdict over the live windows.
    fn health(&self, id: Option<&str>) -> Json {
        let inner = &self.inner;
        let lat = inner.telemetry.latency_us.summary();
        let cancels_60s = inner.telemetry.watchdog_cancels.stats(60).count;
        let slo_us = inner.cfg.slo_p99_ms.saturating_mul(1_000);
        let p99_within_slo = lat.p99 <= slo_us as f64;
        let accepting = self.is_accepting();
        let healthy = accepting && cancels_60s == 0 && p99_within_slo;
        ok_response(
            id,
            vec![
                ("healthy", Json::Bool(healthy)),
                ("accepting", Json::Bool(accepting)),
                ("sessions", Json::num(self.active_sessions() as u64)),
                ("p99_ask_to_answer_us", Json::Num(lat.p99)),
                ("slo_p99_us", Json::num(slo_us)),
                ("p99_within_slo", Json::Bool(p99_within_slo)),
                ("watchdog_cancels_60s", Json::num(cancels_60s)),
                ("flight_dumps", Json::num(inner.counters.flight_dumps.get())),
            ],
        )
    }

    /// Renders the whole telemetry surface as Prometheus text
    /// exposition: every registry counter and histogram, the host-wide
    /// windows and latency quantiles, then one labelled series set per
    /// live session.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let snap = self.inner.metrics.snapshot();
        for (name, v) in &snap.counters {
            let m = prom_name(name);
            out.push_str("# TYPE ");
            out.push_str(&m);
            out.push_str(" counter\n");
            out.push_str(&format!("{m} {v}\n"));
        }
        for (name, h) in &snap.histograms {
            let m = prom_name(name);
            out.push_str("# TYPE ");
            out.push_str(&m);
            out.push_str(" summary\n");
            out.push_str(&format!("{m}_count {}\n{m}_sum {}\n{m}_max {}\n", h.count, h.sum, h.max));
        }
        let t = &self.inner.telemetry;
        for s in t.requests.horizons() {
            out.push_str(&format!(
                "iflex_service_requests_rate{{window=\"{}s\"}} {}\n",
                s.secs,
                fmt_sample(s.rate())
            ));
        }
        let lat = t.latency_us.summary();
        for (q, v) in [("0.5", lat.p50), ("0.95", lat.p95), ("0.99", lat.p99)] {
            out.push_str(&format!(
                "iflex_service_ask_to_answer_us{{quantile=\"{q}\"}} {}\n",
                fmt_sample(v)
            ));
        }
        out.push_str(&format!("iflex_service_ask_to_answer_us_count {}\n", lat.count));
        let sessions = self.inner.sessions.lock().expect("sessions lock");
        for (sid, h) in sessions.iter() {
            let tel = &h.telemetry;
            for s in tel.requests.horizons() {
                out.push_str(&format!(
                    "iflex_session_requests_rate{{session=\"{sid}\",window=\"{}s\"}} {}\n",
                    s.secs,
                    fmt_sample(s.rate())
                ));
            }
            let lat = tel.latency_us.summary();
            for (q, v) in [("0.5", lat.p50), ("0.95", lat.p95), ("0.99", lat.p99)] {
                out.push_str(&format!(
                    "iflex_session_ask_to_answer_us{{session=\"{sid}\",quantile=\"{q}\"}} {}\n",
                    fmt_sample(v)
                ));
            }
            let run = tel.live.sketch(names::RUN_US).summary();
            for (q, v) in [("0.5", run.p50), ("0.95", run.p95), ("0.99", run.p99)] {
                out.push_str(&format!(
                    "iflex_session_run_us{{session=\"{sid}\",quantile=\"{q}\"}} {}\n",
                    fmt_sample(v)
                ));
            }
            out.push_str(&format!(
                "iflex_session_queue_depth{{session=\"{sid}\"}} {}\n",
                tel.queued.load(Ordering::Relaxed)
            ));
            let hits = tel.cache_hits.stats(60);
            let misses = tel.cache_misses.stats(60);
            out.push_str(&format!(
                "iflex_session_cache_hit_ratio{{session=\"{sid}\"}} {}\n",
                fmt_sample(hit_ratio(hits.count, misses.count))
            ));
            let deg = tel.degradations.stats(60);
            out.push_str(&format!(
                "iflex_session_degradations_rate{{session=\"{sid}\",window=\"60s\"}} {}\n",
                fmt_sample(deg.rate())
            ));
            for (i, w) in tel.live.shard_busy_windows().iter().enumerate() {
                let s = w.stats(10);
                out.push_str(&format!(
                    "iflex_session_shard_busy_us{{session=\"{sid}\",shard=\"{i}\",window=\"10s\"}} {}\n",
                    s.sum
                ));
            }
        }
        out
    }

    /// Stops admitting, drains every session (queued jobs complete, then
    /// clean caches publish back to the core), joins all workers and the
    /// watchdog. Idempotent. Returns how many sessions were drained.
    pub fn shutdown(&self) -> usize {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::Release);
        let handles: Vec<(u64, SessionHandle)> = {
            let mut sessions = inner.sessions.lock().expect("sessions lock");
            std::mem::take(&mut *sessions).into_iter().collect()
        };
        let drained = handles.len();
        for (_, mut h) in handles {
            drop(h.tx);
            if let Some(w) = h.worker.take() {
                let _ = w.join();
            }
            inner.tracer.end(h.span);
        }
        inner.stop.store(true, Ordering::Release);
        if let Some(w) = self.watchdog.lock().expect("watchdog lock").take() {
            let _ = w.join();
        }
        drained
    }
}

impl Drop for Host {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The live-series fields of one session, shared between the scoped
/// `stats` view and the JSON `metrics` rendering.
fn session_view(tel: &SessionTelemetry) -> Vec<(&'static str, Json)> {
    let [r1, r10, r60] = tel.requests.horizons();
    let lat = tel.latency_us.summary();
    let run = tel.live.sketch(names::RUN_US).summary();
    let hits = tel.cache_hits.stats(60);
    let misses = tel.cache_misses.stats(60);
    let deg = tel.degradations.stats(60);
    vec![
        ("requests_1s", Json::Num(r1.rate())),
        ("requests_10s", Json::Num(r10.rate())),
        ("requests_60s", Json::Num(r60.rate())),
        ("queue_depth", Json::num(tel.queued.load(Ordering::Relaxed))),
        ("latency_p50_us", Json::Num(lat.p50)),
        ("latency_p95_us", Json::Num(lat.p95)),
        ("latency_p99_us", Json::Num(lat.p99)),
        ("run_p99_us", Json::Num(run.p99)),
        ("cache_hit_ratio_60s", Json::Num(hit_ratio(hits.count, misses.count))),
        ("degradations_60s", Json::num(deg.count)),
        ("degradation_rate_60s", Json::Num(deg.rate())),
        ("flight_events", Json::num(tel.flight.total())),
    ]
}

fn hit_ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Prometheus sample formatting: integers stay integral, fractions get
/// a fixed six decimal places (the exposition format takes any float;
/// fixed width keeps scrapes byte-stable for a given value).
fn fmt_sample(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// `service.requests` → `iflex_service_requests`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("iflex_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
    }
    out
}

/// Captures `flight`'s current ring as a dump: kept in memory (bounded)
/// and, when configured, written to `flight_dir` as one JSONL file.
fn record_flight_dump(inner: &Inner, session: u64, reason: &str, flight: &FlightRecorder) {
    if !flight.is_enabled() {
        return;
    }
    let jsonl = flight.dump_jsonl(session, reason);
    inner.counters.flight_dumps.inc();
    if let Some(dir) = &inner.cfg.flight_dir {
        let seq = inner.dump_seq.fetch_add(1, Ordering::Relaxed);
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("flight-{session}-{seq}-{reason}.jsonl")), &jsonl);
    }
    let mut dumps = inner.dumps.lock().expect("dumps lock");
    if dumps.len() >= MAX_FLIGHT_DUMPS {
        dumps.remove(0);
    }
    dumps.push(FlightDump { session, reason: reason.to_string(), jsonl });
}

/// The wire verb of a request, for flight-recorder event names.
fn cmd_name(req: &Request) -> &'static str {
    match req {
        Request::CreateSession { .. } => "create-session",
        Request::AskQuestion { .. } => "ask-question",
        Request::Answer { .. } => "answer",
        Request::GetResults { .. } => "get-results",
        Request::Sleep { .. } => "sleep",
        Request::Cancel { .. } => "cancel",
        Request::CloseSession { .. } => "close-session",
        Request::Stats { .. } => "stats",
        Request::Metrics { .. } => "metrics",
        Request::Health { .. } => "health",
        Request::Shutdown { .. } => "shutdown",
    }
}

fn watchdog_loop(inner: &Inner) {
    while !inner.stop.load(Ordering::Acquire) {
        std::thread::sleep(inner.cfg.watchdog_interval);
        let sessions = inner.sessions.lock().expect("sessions lock");
        for (sid, h) in sessions.iter() {
            let stuck = h
                .running_since
                .lock()
                .expect("running_since lock")
                .map(|t| t.elapsed() > inner.cfg.stuck_limit)
                .unwrap_or(false);
            if stuck && !h.cancel.is_cancelled() {
                h.cancel.cancel();
                inner.counters.watchdog_cancels.inc();
                inner.telemetry.watchdog_cancels.add_count(1);
                if h.telemetry.flight.is_enabled() {
                    h.telemetry.flight.record(
                        "cancel",
                        "watchdog",
                        format!("stuck beyond {:?}", inner.cfg.stuck_limit),
                    );
                }
                record_flight_dump(inner, *sid, "watchdog_cancel", &h.telemetry.flight);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    inner: &Inner,
    session_id: u64,
    mut state: SessionState,
    rx: Receiver<Job>,
    running_since: &Mutex<Option<Instant>>,
    published: &AtomicBool,
    cancel: &CancelToken,
    span: SpanId,
    tel: &SessionTelemetry,
) {
    while let Ok(job) = rx.recv() {
        tel.queued.fetch_sub(1, Ordering::Relaxed);
        let t0 = Instant::now();
        *running_since.lock().expect("running_since lock") = Some(t0);
        let id = job.req.id().map(str::to_string);
        // The bulkhead wall: a panic anywhere in job handling poisons
        // this session only. The engine already contains rule panics;
        // this catches everything else (assistant code, render, bugs).
        // The worker-job fault site sits inside the wall so chaos can
        // drive the real containment path from the worker's own frame.
        let mut panicked = false;
        let resp = catch_unwind(AssertUnwindSafe(|| {
            if let Some(Fault::Panic(msg)) = state.engine.fault.hit(fault::site::WORKER_JOB) {
                panic!("injected fault: {msg}");
            }
            handle_job(&mut state, cancel, &job.req)
        }))
        .unwrap_or_else(|payload| {
            state.poisoned = true;
            panicked = true;
            inner.counters.worker_panics.inc();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            err_response(id.as_deref(), &format!("session poisoned by panic: {msg}"), None)
        });
        *running_since.lock().expect("running_since lock") = None;
        let us = t0.elapsed().as_micros() as u64;
        tel.requests.add_count(1);
        tel.latency_us_win.observe(us);
        tel.latency_us.observe(us);
        inner.telemetry.latency_us_win.observe(us);
        inner.telemetry.latency_us.observe(us);
        if tel.flight.is_enabled() {
            tel.flight.record("request", cmd_name(&job.req), format!("us={us}"));
        }
        if panicked {
            record_flight_dump(inner, session_id, "worker_panic", &tel.flight);
        } else if !state.poisoned {
            // Engine-side per-run deltas: the incremental-cache hit/miss
            // windows behind the scoped cache-hit ratio, and a flight
            // dump whenever the run degraded (the engine has already
            // recorded each degradation event into the shared recorder).
            let ran_engine =
                matches!(job.req, Request::AskQuestion { .. } | Request::GetResults { .. });
            if ran_engine {
                let st = &state.engine.stats;
                tel.cache_hits.add_count(st.incr_hits as u64);
                tel.cache_misses.add_count(st.incr_misses as u64);
                if !st.degradations.is_empty() {
                    record_flight_dump(inner, session_id, "degradation", &tel.flight);
                }
            }
        }
        let _ = job.reply.send(resp);
    }
    // Drain: hand clean cache entries back to the shared core so the
    // next session starts warm. A poisoned session publishes nothing,
    // and an injected cache-share fault skips the publish (the core
    // stays correct either way — degraded results are never cached, and
    // `publish` refuses diverged forks by epoch).
    if state.poisoned || inner.fault.hit(fault::site::CACHE_SHARE).is_some() {
        inner.counters.publish_skipped.inc();
    } else if inner.core.publish(&state.engine) {
        inner.counters.publishes.inc();
        published.store(true, Ordering::Release);
    } else {
        inner.counters.publish_skipped.inc();
    }
    inner.tracer.end(span);
}

fn handle_job(state: &mut SessionState, cancel: &CancelToken, req: &Request) -> Json {
    let id = req.id();
    if state.poisoned {
        return err_response(id, "session poisoned by earlier panic; close it", None);
    }
    // A fresh job gets a fresh cancel slate; `cancel` targets the run in
    // flight, and the watchdog re-cancels if this one is stuck too.
    cancel.reset();
    match req {
        Request::AskQuestion { count, .. } => {
            let current = state
                .engine
                .run(&state.program)
                .map(|t| t.expanded_len(state.engine.store()).min(usize::MAX as u64) as usize)
                .unwrap_or(0);
            let ctx = AssistContext {
                program: &state.program,
                engine: &mut state.engine,
                asked: &state.asked,
                sample: Sample::new(1.0, 7),
                alpha: 0.1,
                current_size: current,
                examples: Default::default(),
            };
            let questions: Vec<Json> = ordered_questions(&ctx)
                .into_iter()
                .take(*count)
                .map(|q| {
                    Json::obj(vec![
                        ("attr", Json::str(q.attr.display())),
                        ("feature", Json::str(&q.feature)),
                        ("text", Json::str(&q.text)),
                    ])
                })
                .collect();
            ok_response(id, vec![("questions", Json::Arr(questions))])
        }
        Request::Answer { attr, feature, value, .. } => {
            let Some(attribute) =
                attributes(&state.program).into_iter().find(|a| &a.display() == attr)
            else {
                return err_response(id, &format!("unknown attribute {attr:?}"), None);
            };
            let arg = parse_feature_arg(value);
            state.program = add_constraint(&state.program, &attribute, feature, &arg);
            state.asked.insert((attribute.display(), feature.clone()));
            ok_response(id, vec![("applied", Json::Bool(true))])
        }
        Request::GetResults { limit, .. } => match state.engine.run(&state.program) {
            Ok(table) => {
                let store = state.engine.store();
                let degradations = state.engine.stats.degradations.len();
                ok_response(
                    id,
                    vec![
                        ("table", Json::str(table.render(store, *limit))),
                        ("tuples", Json::num(table.len() as u64)),
                        ("expanded", Json::num(table.expanded_len(store))),
                        ("degradations", Json::num(degradations as u64)),
                        ("degraded", Json::Bool(degradations > 0)),
                    ],
                )
            }
            Err(e) => err_response(id, &format!("run failed: {e}"), None),
        },
        Request::Sleep { ms, .. } => {
            let deadline = Instant::now() + Duration::from_millis(*ms);
            let mut cancelled = false;
            while Instant::now() < deadline {
                if cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            ok_response(
                id,
                vec![
                    ("slept_ms", Json::num(*ms)),
                    ("cancelled", Json::Bool(cancelled)),
                ],
            )
        }
        _ => err_response(id, "request is not session work", None),
    }
}

fn parse_feature_arg(value: &str) -> FeatureArg {
    if let Ok(t) = value.parse::<FeatureValue>() {
        FeatureArg::Tri(t)
    } else if let Ok(n) = value.parse::<f64>() {
        FeatureArg::Num(n)
    } else {
        FeatureArg::Text(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::{tiny_core, PROGRAM};

    fn fast_cfg() -> ServiceConfig {
        ServiceConfig {
            watchdog_interval: Duration::from_millis(5),
            stuck_limit: Duration::from_millis(40),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ServiceConfig::default()
        }
    }

    fn create(host: &Host) -> u64 {
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        resp.get("session").and_then(Json::as_u64).expect("session id")
    }

    #[test]
    fn full_session_lifecycle_over_the_protocol() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let resp = host.handle_line(r#"{"cmd":"create-session","id":"c1"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let sid = resp.get("session").and_then(Json::as_u64).unwrap();

        let q = host.handle_line(&format!(r#"{{"cmd":"ask-question","session":{sid}}}"#));
        assert_eq!(q.get("ok"), Some(&Json::Bool(true)));
        let Json::Arr(qs) = q.get("questions").unwrap() else { panic!("questions array") };
        assert!(!qs.is_empty());
        let attr = qs[0].get("attr").and_then(Json::as_str).unwrap().to_string();

        let a = host.handle_line(&format!(
            r#"{{"cmd":"answer","session":{sid},"attr":"{attr}","feature":"bold-font","value":"yes"}}"#
        ));
        assert_eq!(a.get("ok"), Some(&Json::Bool(true)));

        let r = host.handle_line(&format!(r#"{{"cmd":"get-results","session":{sid},"limit":8}}"#));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("degraded"), Some(&Json::Bool(false)));
        assert_eq!(r.get("tuples").and_then(Json::as_u64), Some(5));

        let c = host.handle_line(&format!(r#"{{"cmd":"close-session","session":{sid}}}"#));
        assert_eq!(c.get("closed"), Some(&Json::Bool(true)));
        assert_eq!(c.get("published"), Some(&Json::Bool(true)));
        assert_eq!(host.active_sessions(), 0);
        // The published cache warms the core for the next tenant.
        assert!(host.inner.core.warm_entries() > 0);
    }

    #[test]
    fn admission_cap_rejects_with_retry_hint() {
        let cfg = ServiceConfig { max_sessions: 2, ..fast_cfg() };
        let host = Host::new(tiny_core(), PROGRAM, cfg);
        create(&host);
        create(&host);
        let resp = host.handle(Request::CreateSession { id: Some("late".into()), program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("retryable"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("retry_after_ms").and_then(Json::as_u64), Some(25));
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("late"));
        // Closing a session frees the slot.
        let sid = {
            let sessions = host.inner.sessions.lock().unwrap();
            *sessions.keys().next().unwrap()
        };
        host.handle(Request::CloseSession { id: None, session: sid });
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn queue_backpressure_rejects_instead_of_buffering() {
        let cfg = ServiceConfig { queue_depth: 2, ..fast_cfg() };
        let host = Host::new(tiny_core(), PROGRAM, cfg);
        let sid = create(&host);
        // Hold the worker on a long sleep, then fill the queue.
        let busy = host
            .submit(sid, Request::Sleep { id: None, session: sid, ms: 400 })
            .expect("busy job accepted");
        let mut pending = Vec::new();
        let mut rejected = None;
        for _ in 0..3 {
            match host.submit(sid, Request::Sleep { id: None, session: sid, ms: 1 }) {
                Ok(rx) => pending.push(rx),
                Err(resp) => {
                    rejected = Some(resp);
                    break;
                }
            }
        }
        let rejected = rejected.expect("third enqueue must hit the bound");
        assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(rejected.get("retryable"), Some(&Json::Bool(true)));
        assert!(rejected.get("retry_after_ms").and_then(Json::as_u64).is_some());
        assert!(
            host.metrics().counter_value("service.rejected_backpressure").unwrap_or(0) >= 1
        );
        // Cancel the long sleep so the queue drains promptly.
        host.handle(Request::Cancel { id: None, session: sid });
        assert_eq!(busy.recv().unwrap().get("cancelled"), Some(&Json::Bool(true)));
        for rx in pending {
            assert_eq!(rx.recv().unwrap().get("ok"), Some(&Json::Bool(true)));
        }
    }

    #[test]
    fn watchdog_cancels_stuck_runs() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        // 400ms of "work" against a 40ms stuck limit: the watchdog must
        // cancel long before the sleep finishes on its own.
        let t0 = Instant::now();
        let resp = host.handle(Request::Sleep { id: None, session: sid, ms: 400 });
        assert_eq!(resp.get("cancelled"), Some(&Json::Bool(true)));
        assert!(t0.elapsed() < Duration::from_millis(300), "watchdog was too slow");
        assert!(host.metrics().counter_value("service.watchdog_cancels").unwrap_or(0) >= 1);
        // The session stays usable afterwards.
        let r = host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn spawn_faults_are_retried_with_backoff() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        // Two transient spawn failures, then success on the third try.
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Nth(0), Fault::Io("x".into()), 1);
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Nth(1), Fault::Io("x".into()), 1);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(host.metrics().counter_value("service.spawn_failures"), Some(2));

        // A permanently failing site exhausts the retries and rejects
        // with a retry hint (the client's problem now, not the host's).
        host.fault().disarm_all();
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Always, Fault::Io("x".into()), 1);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("retryable"), Some(&Json::Bool(true)));
        assert_eq!(host.active_sessions(), 1);
    }

    #[test]
    fn cache_share_fault_degrades_to_cold_fork() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        // Warm the core through a first session.
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        host.handle(Request::CloseSession { id: None, session: sid });
        assert!(host.inner.core.warm_entries() > 0);
        // A cache-share fault on the next create: session still works,
        // just cold.
        host.fault().arm(fault::site::CACHE_SHARE, Trigger::Nth(0), Fault::Io("x".into()), 1);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("warm_entries").and_then(Json::as_u64), Some(0));
        let sid2 = resp.get("session").and_then(Json::as_u64).unwrap();
        let r = host.handle(Request::GetResults { id: None, session: sid2, limit: 4 });
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("degraded"), Some(&Json::Bool(false)));
    }

    #[test]
    fn shutdown_drains_and_is_idempotent() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        create(&host);
        create(&host);
        let resp = host.handle(Request::Shutdown { id: Some("bye".into()) });
        assert_eq!(resp.get("drained_sessions").and_then(Json::as_u64), Some(2));
        assert!(!host.is_accepting());
        assert_eq!(host.active_sessions(), 0);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(host.shutdown(), 0);
    }

    #[test]
    fn answer_rejects_unknown_attribute() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        let resp = host.handle(Request::Answer {
            id: None,
            session: sid,
            attr: "nope.v".into(),
            feature: "bold-font".into(),
            value: "yes".into(),
        });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("retryable"), Some(&Json::Bool(false)));
    }

    #[test]
    fn feature_arg_parsing_covers_tri_num_text() {
        assert_eq!(parse_feature_arg("distinct-yes"), FeatureArg::Tri(FeatureValue::DistinctYes));
        assert_eq!(parse_feature_arg("1000000"), FeatureArg::Num(1_000_000.0));
        assert_eq!(parse_feature_arg("Price:"), FeatureArg::Text("Price:".into()));
    }

    #[test]
    fn scoped_stats_expose_live_windows_and_quantiles() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        for _ in 0..3 {
            let r = host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        }
        let s = host.handle(Request::Stats { id: None, session: Some(sid) });
        assert_eq!(s.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(s.get("session").and_then(Json::as_u64), Some(sid));
        let req60 = s.get("requests_60s").and_then(Json::as_f64).unwrap();
        assert!(req60 > 0.0, "windowed request rate must be live: {req60}");
        let p99 = s.get("latency_p99_us").and_then(Json::as_f64).unwrap();
        assert!(p99 > 0.0, "latency quantile must be populated");
        assert_eq!(s.get("queue_depth").and_then(Json::as_u64), Some(0));
        // The second and third runs hit the incremental cache.
        let ratio = s.get("cache_hit_ratio_60s").and_then(Json::as_f64).unwrap();
        assert!(ratio > 0.0, "warm reruns must register cache hits: {ratio}");
        // The engine's run-latency sketch lands in the same scope.
        let run_p99 = s.get("run_p99_us").and_then(Json::as_f64).unwrap();
        assert!(run_p99 >= 0.0);
        // Scoped stats for a missing session fail cleanly.
        let missing = host.handle(Request::Stats { id: None, session: Some(999) });
        assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn quantiles_move_across_scrapes() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        let first = host.handle(Request::Stats { id: None, session: Some(sid) });
        let c1 = {
            let sessions = host.inner.sessions.lock().unwrap();
            sessions[&sid].telemetry.latency_us.count()
        };
        // A visibly slower request shifts the sketch population.
        host.handle(Request::Sleep { id: None, session: sid, ms: 15 });
        let second = host.handle(Request::Stats { id: None, session: Some(sid) });
        let c2 = {
            let sessions = host.inner.sessions.lock().unwrap();
            sessions[&sid].telemetry.latency_us.count()
        };
        assert!(c2 > c1, "sketch population must grow between scrapes");
        let p99_a = first.get("latency_p99_us").and_then(Json::as_f64).unwrap();
        let p99_b = second.get("latency_p99_us").and_then(Json::as_f64).unwrap();
        assert!(p99_b >= p99_a, "a 15ms outlier cannot lower p99");
        assert!(p99_b >= 10_000.0, "p99 must reflect the slow request: {p99_b}");
    }

    #[test]
    fn watchdog_cancel_dumps_the_flight_recorder() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        let resp = host.handle(Request::Sleep { id: None, session: sid, ms: 400 });
        assert_eq!(resp.get("cancelled"), Some(&Json::Bool(true)));
        let dumps = host.flight_dumps();
        assert!(!dumps.is_empty(), "watchdog cancel must capture a dump");
        let d = dumps.iter().find(|d| d.reason == "watchdog_cancel").expect("reason");
        assert_eq!(d.session, sid);
        assert!(d.jsonl.lines().next().unwrap().contains("\"flight\":\"v1\""));
        assert!(d.jsonl.contains("\"kind\":\"cancel\""), "dump: {}", d.jsonl);
        assert!(d.jsonl.contains("\"name\":\"create-session\"") || d.jsonl.contains("\"kind\":\"session\""));
    }

    #[test]
    fn worker_panic_dumps_the_flight_recorder() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        assert!(host.arm_session(
            sid,
            fault::site::WORKER_JOB,
            Trigger::Nth(0),
            Fault::Panic("chaos".into()),
            1,
        ));
        let r = host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert!(host.metrics().counter_value("service.worker_panics").unwrap_or(0) >= 1);
        let dumps = host.flight_dumps();
        let d = dumps.iter().find(|d| d.reason == "worker_panic").expect("panic dump");
        assert_eq!(d.session, sid);
        // The victim's preceding healthy request is in the ring.
        assert!(d.jsonl.contains("\"name\":\"get-results\""), "dump: {}", d.jsonl);
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let cfg = ServiceConfig { telemetry: false, ..fast_cfg() };
        let host = Host::new(tiny_core(), PROGRAM, cfg);
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        // Force a watchdog cancel; with telemetry off there is no dump.
        host.handle(Request::Sleep { id: None, session: sid, ms: 400 });
        assert!(host.flight_dumps().is_empty());
        let s = host.handle(Request::Stats { id: None, session: Some(sid) });
        assert_eq!(s.get("requests_60s").and_then(Json::as_f64), Some(0.0));
        assert_eq!(s.get("latency_p99_us").and_then(Json::as_f64), Some(0.0));
        assert_eq!(s.get("flight_events").and_then(Json::as_u64), Some(0));
        // Lifetime counters still work — only live series are gated.
        assert!(host.metrics().counter_value("service.requests").unwrap_or(0) > 0);
    }

    #[test]
    fn health_reflects_watchdog_cancels_and_slo() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        let h = host.handle(Request::Health { id: Some("h1".into()) });
        assert_eq!(h.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(h.get("healthy"), Some(&Json::Bool(true)));
        assert_eq!(h.get("watchdog_cancels_60s").and_then(Json::as_u64), Some(0));
        // A stuck run turns the verdict red via the cancel window.
        host.handle(Request::Sleep { id: None, session: sid, ms: 400 });
        let h = host.handle(Request::Health { id: None });
        assert_eq!(h.get("healthy"), Some(&Json::Bool(false)));
        assert!(h.get("watchdog_cancels_60s").and_then(Json::as_u64).unwrap() >= 1);
    }

    #[test]
    fn metrics_command_renders_json_and_prometheus() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        let m = host.handle(Request::Metrics { id: None, format: None });
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)));
        let counters = m.get("counters").expect("counters object");
        assert!(counters.get("service.requests").and_then(Json::as_u64).unwrap() > 0);
        let Json::Arr(sessions) = m.get("sessions").unwrap() else { panic!("sessions array") };
        assert_eq!(sessions.len(), 1);
        assert!(sessions[0].get("latency_p99_us").and_then(Json::as_f64).unwrap() > 0.0);

        let p = host.handle(Request::Metrics { id: None, format: Some("prometheus".into()) });
        let text = p.get("exposition").and_then(Json::as_str).unwrap();
        assert!(text.contains("# TYPE iflex_service_requests counter"));
        assert!(text.contains(&format!("iflex_session_ask_to_answer_us{{session=\"{sid}\",quantile=\"0.99\"}}")));
        assert!(text.contains(&format!("iflex_session_requests_rate{{session=\"{sid}\",window=\"10s\"}}")));
        // Every sample line parses as `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad sample: {line}"));
        }
        let bad = host.handle(Request::Metrics { id: None, format: Some("xml".into()) });
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn degraded_run_dumps_the_flight_recorder() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        assert!(host.arm_session(
            sid,
            fault::site::EVAL_RULE,
            Trigger::Nth(0),
            Fault::TooLarge,
            1,
        ));
        let r = host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("degraded"), Some(&Json::Bool(true)));
        let dumps = host.flight_dumps();
        let d = dumps.iter().find(|d| d.reason == "degradation").expect("degradation dump");
        assert!(d.jsonl.contains("\"kind\":\"degradation\""), "dump: {}", d.jsonl);
    }

    #[test]
    fn flight_dir_writes_dump_files() {
        let dir = std::env::temp_dir().join(format!("iflex-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig { flight_dir: Some(dir.clone()), ..fast_cfg() };
        let host = Host::new(tiny_core(), PROGRAM, cfg);
        let sid = create(&host);
        host.handle(Request::Sleep { id: None, session: sid, ms: 400 });
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("flight dir created")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            files.iter().any(|f| f.starts_with(&format!("flight-{sid}-")) && f.ends_with("watchdog_cancel.jsonl")),
            "files: {files:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
