//! The multi-session host: one shared [`EngineCore`], many isolated
//! session workers.
//!
//! Every session runs on its own worker thread behind a **bounded** job
//! queue — the bulkhead. Sessions share the immutable document store,
//! the feature memo, and the warm incremental cache through the core
//! (all read-only or pure), while everything isolation-relevant — fault
//! plan, budget, cancel token, clock, metrics, tracer — is per fork.
//! A panicking, degrading, or budget-exhausted session is contained to
//! its own worker; siblings keep producing byte-identical results.
//!
//! Resilience policy:
//! - **Admission control**: at most `max_sessions` live sessions; past
//!   the cap `create-session` is rejected with `retry_after_ms`, never
//!   queued.
//! - **Backpressure**: each session's queue holds `queue_depth` jobs;
//!   a full queue rejects with `retry_after_ms` instead of buffering
//!   without bound.
//! - **Watchdog**: a background thread cancels (via the session's
//!   [`CancelToken`]) any run that exceeds `stuck_limit`; the engine
//!   degrades the rest of that run cooperatively.
//! - **Graceful shutdown**: stop admitting, drain queued jobs, publish
//!   each clean session's cache entries back to the core, join workers.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::protocol::{decode, err_response, ok_response, Request};
use iflex_alog::{parse_program, Program};
use iflex_assistant::{add_constraint, attributes, ordered_questions, AssistContext};
use iflex_engine::obs::{Registry, SpanId, SpanKind, Tracer};
use iflex_engine::{fault, CancelToken, Engine, EngineCore, Fault, FaultPlan, Sample, Trigger};
use iflex_features::{FeatureArg, FeatureValue};

/// Host tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission cap: live sessions past this are rejected.
    pub max_sessions: usize,
    /// Bound of each session's job queue (backpressure past it).
    pub queue_depth: usize,
    /// Backoff hint attached to admission/backpressure rejections.
    pub retry_after_ms: u64,
    /// Wall-clock deadline applied to every engine run.
    pub run_deadline: Option<Duration>,
    /// How often the watchdog scans for stuck runs.
    pub watchdog_interval: Duration,
    /// A job older than this is cancelled by the watchdog.
    pub stuck_limit: Duration,
    /// Transient session-spawn failures tolerated before giving up.
    pub spawn_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_sessions: 8,
            queue_depth: 4,
            retry_after_ms: 25,
            run_deadline: Some(Duration::from_secs(10)),
            watchdog_interval: Duration::from_millis(20),
            stuck_limit: Duration::from_secs(2),
            spawn_retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

/// One queued unit of session work: the request plus its reply slot.
struct Job {
    req: Request,
    reply: SyncSender<Json>,
}

/// The host side of a live session.
struct SessionHandle {
    tx: SyncSender<Job>,
    worker: Option<JoinHandle<()>>,
    cancel: CancelToken,
    engine_fault: Arc<FaultPlan>,
    running_since: Arc<Mutex<Option<Instant>>>,
    published: Arc<AtomicBool>,
    span: SpanId,
}

struct Inner {
    core: Arc<EngineCore>,
    cfg: ServiceConfig,
    sessions: Mutex<BTreeMap<u64, SessionHandle>>,
    next_id: AtomicU64,
    accepting: AtomicBool,
    stop: AtomicBool,
    /// Service-layer fault plan: session-spawn, request-decode,
    /// response-write, cache-share probes.
    fault: Arc<FaultPlan>,
    metrics: Registry,
    tracer: Tracer,
    default_program: String,
}

/// The multi-session service host. Cheap to share behind `&`; all
/// methods take `&self`.
pub struct Host {
    inner: Arc<Inner>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

/// Worker-thread state for one session (never crosses the bulkhead).
struct SessionState {
    engine: Engine,
    program: Program,
    asked: BTreeSet<(String, String)>,
    poisoned: bool,
}

impl Host {
    /// Builds a host over a shared core with the given default program.
    pub fn new(core: EngineCore, default_program: &str, cfg: ServiceConfig) -> Host {
        let inner = Arc::new(Inner {
            core: Arc::new(core),
            cfg,
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            accepting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            fault: Arc::new(FaultPlan::disarmed()),
            metrics: Registry::new(),
            tracer: Tracer::disabled(),
            default_program: default_program.to_string(),
        });
        let watchdog = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("iflex-watchdog".into())
                .spawn(move || watchdog_loop(&inner))
                .ok()
        };
        Host { inner, watchdog: Mutex::new(watchdog) }
    }

    /// The service-layer fault plan (spawn/decode/write/cache-share
    /// sites). Arm it to chaos-test the host itself.
    pub fn fault(&self) -> &Arc<FaultPlan> {
        &self.inner.fault
    }

    /// The service metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }

    /// Enables per-session tracing spans on the host tracer.
    pub fn enable_tracing(&self) -> &Tracer {
        self.inner.tracer.enable();
        &self.inner.tracer
    }

    /// Live session count.
    pub fn active_sessions(&self) -> usize {
        self.inner.sessions.lock().expect("sessions lock").len()
    }

    /// True until shutdown begins.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::Acquire)
    }

    /// Arms a fault on one session's *engine* plan (bulkhead-internal
    /// sites: eval-rule, join-tuple, memo-lookup, ...). Returns false
    /// when the session does not exist.
    pub fn arm_session(
        &self,
        session: u64,
        site: &'static str,
        trigger: Trigger,
        fault_kind: Fault,
        seed: u64,
    ) -> bool {
        let sessions = self.inner.sessions.lock().expect("sessions lock");
        match sessions.get(&session) {
            Some(h) => {
                h.engine_fault.arm(site, trigger, fault_kind, seed);
                true
            }
            None => false,
        }
    }

    /// Decodes one request line and handles it. Decode failures become
    /// non-retryable error responses (a malformed line will not improve
    /// on retry).
    pub fn handle_line(&self, line: &str) -> Json {
        match decode(line) {
            Ok(req) => self.handle(req),
            Err(e) => {
                self.inner.metrics.counter("service.decode_errors").inc();
                err_response(e.id.as_deref(), &e.msg, None)
            }
        }
    }

    /// Handles one decoded request.
    pub fn handle(&self, req: Request) -> Json {
        self.inner.metrics.counter("service.requests").inc();
        let id = req.id().map(str::to_string);
        let id = id.as_deref();
        match req {
            Request::CreateSession { program, .. } => self.create_session(id, program.as_deref()),
            Request::Cancel { session, .. } => {
                let sessions = self.inner.sessions.lock().expect("sessions lock");
                match sessions.get(&session) {
                    Some(h) => {
                        h.cancel.cancel();
                        self.inner.metrics.counter("service.cancels").inc();
                        ok_response(id, vec![("cancelled", Json::Bool(true))])
                    }
                    None => err_response(id, &format!("no such session {session}"), None),
                }
            }
            Request::CloseSession { session, .. } => self.close_session(id, session),
            Request::Stats { .. } => self.stats(id),
            Request::Shutdown { .. } => {
                let drained = self.shutdown();
                ok_response(id, vec![("drained_sessions", Json::num(drained as u64))])
            }
            req @ (Request::AskQuestion { .. }
            | Request::Answer { .. }
            | Request::GetResults { .. }
            | Request::Sleep { .. }) => {
                let session = match req {
                    Request::AskQuestion { session, .. }
                    | Request::Answer { session, .. }
                    | Request::GetResults { session, .. }
                    | Request::Sleep { session, .. } => session,
                    _ => unreachable!(),
                };
                match self.submit(session, req) {
                    Ok(rx) => rx.recv().unwrap_or_else(|_| {
                        err_response(id, "session worker died before replying", None)
                    }),
                    Err(resp) => resp,
                }
            }
        }
    }

    /// Enqueues a session-targeted request without waiting for the
    /// reply. `Err` carries the ready-to-send rejection (unknown
    /// session, or queue full — the backpressure path).
    pub fn submit(&self, session: u64, req: Request) -> Result<Receiver<Json>, Json> {
        let id = req.id().map(str::to_string);
        let tx = {
            let sessions = self.inner.sessions.lock().expect("sessions lock");
            match sessions.get(&session) {
                Some(h) => h.tx.clone(),
                None => {
                    return Err(err_response(
                        id.as_deref(),
                        &format!("no such session {session}"),
                        None,
                    ))
                }
            }
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        match tx.try_send(Job { req, reply: reply_tx }) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.counter("service.rejected_backpressure").inc();
                Err(err_response(
                    id.as_deref(),
                    &format!("session {session} queue full"),
                    Some(self.inner.cfg.retry_after_ms),
                ))
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(err_response(id.as_deref(), &format!("session {session} worker died"), None))
            }
        }
    }

    fn create_session(&self, id: Option<&str>, program: Option<&str>) -> Json {
        let inner = &self.inner;
        if !self.is_accepting() {
            return err_response(id, "service is shutting down", None);
        }
        let source = program.unwrap_or(&inner.default_program).to_string();
        let parsed = match parse_program(&source) {
            Ok(p) => p,
            Err(e) => return err_response(id, &format!("program parse error: {e}"), None),
        };
        // Admission control: check the cap while holding the table lock
        // so concurrent creates cannot oversubscribe.
        {
            let sessions = inner.sessions.lock().expect("sessions lock");
            if sessions.len() >= inner.cfg.max_sessions {
                inner.metrics.counter("service.rejected_admission").inc();
                return err_response(
                    id,
                    &format!("session table full ({} live)", sessions.len()),
                    Some(inner.cfg.retry_after_ms),
                );
            }
        }
        // Session spawn, with exponential backoff across transient
        // failures (an injected fault at the spawn site models thread
        // or resource exhaustion; the fault is consumed, not raised).
        let mut attempt = 0u32;
        let spawned = loop {
            match self.try_spawn(parsed.clone()) {
                Ok(s) => break Some(s),
                Err(transient) => {
                    inner.metrics.counter("service.spawn_failures").inc();
                    if !transient || attempt >= inner.cfg.spawn_retries {
                        break None;
                    }
                    let backoff = inner
                        .cfg
                        .backoff_base
                        .saturating_mul(1 << attempt.min(16))
                        .min(inner.cfg.backoff_cap);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
            }
        };
        let Some((session_id, warm)) = spawned else {
            return err_response(
                id,
                "session spawn failed after retries",
                Some(inner.cfg.retry_after_ms),
            );
        };
        inner.metrics.counter("service.sessions_created").inc();
        ok_response(
            id,
            vec![
                ("session", Json::num(session_id)),
                ("warm_entries", Json::num(warm as u64)),
            ],
        )
    }

    /// One spawn attempt. `Err(true)` is transient (retry makes sense);
    /// `Err(false)` is permanent.
    fn try_spawn(&self, program: Program) -> Result<(u64, usize), bool> {
        let inner = &self.inner;
        if inner.fault.hit(fault::site::SESSION_SPAWN).is_some() {
            return Err(true);
        }
        let mut engine = inner.core.fork();
        let mut warm = inner.core.warm_entries();
        // Cache hand-off probe: a fault here degrades the new session to
        // a cold cache instead of failing the spawn — the bulkhead keeps
        // working, it just recomputes.
        if inner.fault.hit(fault::site::CACHE_SHARE).is_some() {
            inner.metrics.counter("service.cache_share_faults").inc();
            engine.clear_cache();
            warm = 0;
        }
        engine.budget.deadline = inner.cfg.run_deadline;
        let cancel = engine.budget.cancel_token();
        let engine_fault = Arc::clone(&engine.fault);
        let session_id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let span = inner.tracer.begin(SpanId::NONE, SpanKind::Session, &format!("tenant{session_id}"));
        engine.tracer = inner.tracer.clone();
        engine.trace_parent = span;
        let running_since = Arc::new(Mutex::new(None));
        let published = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<Job>(inner.cfg.queue_depth);
        let state = SessionState { engine, program, asked: BTreeSet::new(), poisoned: false };
        let worker = {
            let inner = Arc::clone(inner);
            let running_since = Arc::clone(&running_since);
            let published = Arc::clone(&published);
            let cancel = cancel.clone();
            std::thread::Builder::new()
                .name(format!("iflex-session-{session_id}"))
                .spawn(move || worker_loop(&inner, state, rx, &running_since, &published, &cancel, span))
                .map_err(|_| true)?
        };
        let handle = SessionHandle {
            tx,
            worker: Some(worker),
            cancel,
            engine_fault,
            running_since,
            published,
            span,
        };
        inner.sessions.lock().expect("sessions lock").insert(session_id, handle);
        Ok((session_id, warm))
    }

    fn close_session(&self, id: Option<&str>, session: u64) -> Json {
        let handle = {
            let mut sessions = self.inner.sessions.lock().expect("sessions lock");
            sessions.remove(&session)
        };
        let Some(mut handle) = handle else {
            return err_response(id, &format!("no such session {session}"), None);
        };
        // Dropping the sender ends the worker's receive loop once the
        // queued jobs drain; the worker publishes on its way out.
        drop(handle.tx);
        if let Some(w) = handle.worker.take() {
            let _ = w.join();
        }
        self.inner.tracer.end(handle.span);
        ok_response(
            id,
            vec![
                ("closed", Json::Bool(true)),
                ("published", Json::Bool(handle.published.load(Ordering::Acquire))),
            ],
        )
    }

    fn stats(&self, id: Option<&str>) -> Json {
        let inner = &self.inner;
        let live = self.active_sessions() as u64;
        let c = |name: &str| Json::num(inner.metrics.counter_value(name).unwrap_or(0));
        ok_response(
            id,
            vec![
                ("sessions", Json::num(live)),
                ("max_sessions", Json::num(inner.cfg.max_sessions as u64)),
                ("accepting", Json::Bool(self.is_accepting())),
                ("created", c("service.sessions_created")),
                ("rejected_admission", c("service.rejected_admission")),
                ("rejected_backpressure", c("service.rejected_backpressure")),
                ("spawn_failures", c("service.spawn_failures")),
                ("decode_errors", c("service.decode_errors")),
                ("worker_panics", c("service.worker_panics")),
                ("watchdog_cancels", c("service.watchdog_cancels")),
                ("publishes", c("service.publishes")),
                ("publish_skipped", c("service.publish_skipped")),
                ("warm_entries", Json::num(inner.core.warm_entries() as u64)),
            ],
        )
    }

    /// Stops admitting, drains every session (queued jobs complete, then
    /// clean caches publish back to the core), joins all workers and the
    /// watchdog. Idempotent. Returns how many sessions were drained.
    pub fn shutdown(&self) -> usize {
        let inner = &self.inner;
        inner.accepting.store(false, Ordering::Release);
        let handles: Vec<(u64, SessionHandle)> = {
            let mut sessions = inner.sessions.lock().expect("sessions lock");
            std::mem::take(&mut *sessions).into_iter().collect()
        };
        let drained = handles.len();
        for (_, mut h) in handles {
            drop(h.tx);
            if let Some(w) = h.worker.take() {
                let _ = w.join();
            }
            inner.tracer.end(h.span);
        }
        inner.stop.store(true, Ordering::Release);
        if let Some(w) = self.watchdog.lock().expect("watchdog lock").take() {
            let _ = w.join();
        }
        drained
    }
}

impl Drop for Host {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn watchdog_loop(inner: &Inner) {
    while !inner.stop.load(Ordering::Acquire) {
        std::thread::sleep(inner.cfg.watchdog_interval);
        let sessions = inner.sessions.lock().expect("sessions lock");
        for h in sessions.values() {
            let stuck = h
                .running_since
                .lock()
                .expect("running_since lock")
                .map(|t| t.elapsed() > inner.cfg.stuck_limit)
                .unwrap_or(false);
            if stuck && !h.cancel.is_cancelled() {
                h.cancel.cancel();
                inner.metrics.counter("service.watchdog_cancels").inc();
            }
        }
    }
}

fn worker_loop(
    inner: &Inner,
    mut state: SessionState,
    rx: Receiver<Job>,
    running_since: &Mutex<Option<Instant>>,
    published: &AtomicBool,
    cancel: &CancelToken,
    span: SpanId,
) {
    while let Ok(job) = rx.recv() {
        *running_since.lock().expect("running_since lock") = Some(Instant::now());
        let id = job.req.id().map(str::to_string);
        // The bulkhead wall: a panic anywhere in job handling poisons
        // this session only. The engine already contains rule panics;
        // this catches everything else (assistant code, render, bugs).
        let resp = catch_unwind(AssertUnwindSafe(|| {
            handle_job(&mut state, cancel, &job.req)
        }))
        .unwrap_or_else(|payload| {
            state.poisoned = true;
            inner.metrics.counter("service.worker_panics").inc();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            err_response(id.as_deref(), &format!("session poisoned by panic: {msg}"), None)
        });
        *running_since.lock().expect("running_since lock") = None;
        let _ = job.reply.send(resp);
    }
    // Drain: hand clean cache entries back to the shared core so the
    // next session starts warm. A poisoned session publishes nothing,
    // and an injected cache-share fault skips the publish (the core
    // stays correct either way — degraded results are never cached, and
    // `publish` refuses diverged forks by epoch).
    if state.poisoned || inner.fault.hit(fault::site::CACHE_SHARE).is_some() {
        inner.metrics.counter("service.publish_skipped").inc();
    } else if inner.core.publish(&state.engine) {
        inner.metrics.counter("service.publishes").inc();
        published.store(true, Ordering::Release);
    } else {
        inner.metrics.counter("service.publish_skipped").inc();
    }
    inner.tracer.end(span);
}

fn handle_job(state: &mut SessionState, cancel: &CancelToken, req: &Request) -> Json {
    let id = req.id();
    if state.poisoned {
        return err_response(id, "session poisoned by earlier panic; close it", None);
    }
    // A fresh job gets a fresh cancel slate; `cancel` targets the run in
    // flight, and the watchdog re-cancels if this one is stuck too.
    cancel.reset();
    match req {
        Request::AskQuestion { count, .. } => {
            let current = state
                .engine
                .run(&state.program)
                .map(|t| t.expanded_len(state.engine.store()).min(usize::MAX as u64) as usize)
                .unwrap_or(0);
            let ctx = AssistContext {
                program: &state.program,
                engine: &mut state.engine,
                asked: &state.asked,
                sample: Sample::new(1.0, 7),
                alpha: 0.1,
                current_size: current,
                examples: Default::default(),
            };
            let questions: Vec<Json> = ordered_questions(&ctx)
                .into_iter()
                .take(*count)
                .map(|q| {
                    Json::obj(vec![
                        ("attr", Json::str(q.attr.display())),
                        ("feature", Json::str(&q.feature)),
                        ("text", Json::str(&q.text)),
                    ])
                })
                .collect();
            ok_response(id, vec![("questions", Json::Arr(questions))])
        }
        Request::Answer { attr, feature, value, .. } => {
            let Some(attribute) =
                attributes(&state.program).into_iter().find(|a| &a.display() == attr)
            else {
                return err_response(id, &format!("unknown attribute {attr:?}"), None);
            };
            let arg = parse_feature_arg(value);
            state.program = add_constraint(&state.program, &attribute, feature, &arg);
            state.asked.insert((attribute.display(), feature.clone()));
            ok_response(id, vec![("applied", Json::Bool(true))])
        }
        Request::GetResults { limit, .. } => match state.engine.run(&state.program) {
            Ok(table) => {
                let store = state.engine.store();
                let degradations = state.engine.stats.degradations.len();
                ok_response(
                    id,
                    vec![
                        ("table", Json::str(table.render(store, *limit))),
                        ("tuples", Json::num(table.len() as u64)),
                        ("expanded", Json::num(table.expanded_len(store))),
                        ("degradations", Json::num(degradations as u64)),
                        ("degraded", Json::Bool(degradations > 0)),
                    ],
                )
            }
            Err(e) => err_response(id, &format!("run failed: {e}"), None),
        },
        Request::Sleep { ms, .. } => {
            let deadline = Instant::now() + Duration::from_millis(*ms);
            let mut cancelled = false;
            while Instant::now() < deadline {
                if cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            ok_response(
                id,
                vec![
                    ("slept_ms", Json::num(*ms)),
                    ("cancelled", Json::Bool(cancelled)),
                ],
            )
        }
        _ => err_response(id, "request is not session work", None),
    }
}

fn parse_feature_arg(value: &str) -> FeatureArg {
    if let Ok(t) = value.parse::<FeatureValue>() {
        FeatureArg::Tri(t)
    } else if let Ok(n) = value.parse::<f64>() {
        FeatureArg::Num(n)
    } else {
        FeatureArg::Text(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::{tiny_core, PROGRAM};

    fn fast_cfg() -> ServiceConfig {
        ServiceConfig {
            watchdog_interval: Duration::from_millis(5),
            stuck_limit: Duration::from_millis(40),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ServiceConfig::default()
        }
    }

    fn create(host: &Host) -> u64 {
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        resp.get("session").and_then(Json::as_u64).expect("session id")
    }

    #[test]
    fn full_session_lifecycle_over_the_protocol() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let resp = host.handle_line(r#"{"cmd":"create-session","id":"c1"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let sid = resp.get("session").and_then(Json::as_u64).unwrap();

        let q = host.handle_line(&format!(r#"{{"cmd":"ask-question","session":{sid}}}"#));
        assert_eq!(q.get("ok"), Some(&Json::Bool(true)));
        let Json::Arr(qs) = q.get("questions").unwrap() else { panic!("questions array") };
        assert!(!qs.is_empty());
        let attr = qs[0].get("attr").and_then(Json::as_str).unwrap().to_string();

        let a = host.handle_line(&format!(
            r#"{{"cmd":"answer","session":{sid},"attr":"{attr}","feature":"bold-font","value":"yes"}}"#
        ));
        assert_eq!(a.get("ok"), Some(&Json::Bool(true)));

        let r = host.handle_line(&format!(r#"{{"cmd":"get-results","session":{sid},"limit":8}}"#));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("degraded"), Some(&Json::Bool(false)));
        assert_eq!(r.get("tuples").and_then(Json::as_u64), Some(5));

        let c = host.handle_line(&format!(r#"{{"cmd":"close-session","session":{sid}}}"#));
        assert_eq!(c.get("closed"), Some(&Json::Bool(true)));
        assert_eq!(c.get("published"), Some(&Json::Bool(true)));
        assert_eq!(host.active_sessions(), 0);
        // The published cache warms the core for the next tenant.
        assert!(host.inner.core.warm_entries() > 0);
    }

    #[test]
    fn admission_cap_rejects_with_retry_hint() {
        let cfg = ServiceConfig { max_sessions: 2, ..fast_cfg() };
        let host = Host::new(tiny_core(), PROGRAM, cfg);
        create(&host);
        create(&host);
        let resp = host.handle(Request::CreateSession { id: Some("late".into()), program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("retryable"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("retry_after_ms").and_then(Json::as_u64), Some(25));
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("late"));
        // Closing a session frees the slot.
        let sid = {
            let sessions = host.inner.sessions.lock().unwrap();
            *sessions.keys().next().unwrap()
        };
        host.handle(Request::CloseSession { id: None, session: sid });
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn queue_backpressure_rejects_instead_of_buffering() {
        let cfg = ServiceConfig { queue_depth: 2, ..fast_cfg() };
        let host = Host::new(tiny_core(), PROGRAM, cfg);
        let sid = create(&host);
        // Hold the worker on a long sleep, then fill the queue.
        let busy = host
            .submit(sid, Request::Sleep { id: None, session: sid, ms: 400 })
            .expect("busy job accepted");
        let mut pending = Vec::new();
        let mut rejected = None;
        for _ in 0..3 {
            match host.submit(sid, Request::Sleep { id: None, session: sid, ms: 1 }) {
                Ok(rx) => pending.push(rx),
                Err(resp) => {
                    rejected = Some(resp);
                    break;
                }
            }
        }
        let rejected = rejected.expect("third enqueue must hit the bound");
        assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(rejected.get("retryable"), Some(&Json::Bool(true)));
        assert!(rejected.get("retry_after_ms").and_then(Json::as_u64).is_some());
        assert!(
            host.metrics().counter_value("service.rejected_backpressure").unwrap_or(0) >= 1
        );
        // Cancel the long sleep so the queue drains promptly.
        host.handle(Request::Cancel { id: None, session: sid });
        assert_eq!(busy.recv().unwrap().get("cancelled"), Some(&Json::Bool(true)));
        for rx in pending {
            assert_eq!(rx.recv().unwrap().get("ok"), Some(&Json::Bool(true)));
        }
    }

    #[test]
    fn watchdog_cancels_stuck_runs() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        // 400ms of "work" against a 40ms stuck limit: the watchdog must
        // cancel long before the sleep finishes on its own.
        let t0 = Instant::now();
        let resp = host.handle(Request::Sleep { id: None, session: sid, ms: 400 });
        assert_eq!(resp.get("cancelled"), Some(&Json::Bool(true)));
        assert!(t0.elapsed() < Duration::from_millis(300), "watchdog was too slow");
        assert!(host.metrics().counter_value("service.watchdog_cancels").unwrap_or(0) >= 1);
        // The session stays usable afterwards.
        let r = host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn spawn_faults_are_retried_with_backoff() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        // Two transient spawn failures, then success on the third try.
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Nth(0), Fault::Io("x".into()), 1);
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Nth(1), Fault::Io("x".into()), 1);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(host.metrics().counter_value("service.spawn_failures"), Some(2));

        // A permanently failing site exhausts the retries and rejects
        // with a retry hint (the client's problem now, not the host's).
        host.fault().disarm_all();
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Always, Fault::Io("x".into()), 1);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("retryable"), Some(&Json::Bool(true)));
        assert_eq!(host.active_sessions(), 1);
    }

    #[test]
    fn cache_share_fault_degrades_to_cold_fork() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        // Warm the core through a first session.
        let sid = create(&host);
        host.handle(Request::GetResults { id: None, session: sid, limit: 4 });
        host.handle(Request::CloseSession { id: None, session: sid });
        assert!(host.inner.core.warm_entries() > 0);
        // A cache-share fault on the next create: session still works,
        // just cold.
        host.fault().arm(fault::site::CACHE_SHARE, Trigger::Nth(0), Fault::Io("x".into()), 1);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("warm_entries").and_then(Json::as_u64), Some(0));
        let sid2 = resp.get("session").and_then(Json::as_u64).unwrap();
        let r = host.handle(Request::GetResults { id: None, session: sid2, limit: 4 });
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("degraded"), Some(&Json::Bool(false)));
    }

    #[test]
    fn shutdown_drains_and_is_idempotent() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        create(&host);
        create(&host);
        let resp = host.handle(Request::Shutdown { id: Some("bye".into()) });
        assert_eq!(resp.get("drained_sessions").and_then(Json::as_u64), Some(2));
        assert!(!host.is_accepting());
        assert_eq!(host.active_sessions(), 0);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(host.shutdown(), 0);
    }

    #[test]
    fn answer_rejects_unknown_attribute() {
        let host = Host::new(tiny_core(), PROGRAM, fast_cfg());
        let sid = create(&host);
        let resp = host.handle(Request::Answer {
            id: None,
            session: sid,
            attr: "nope.v".into(),
            feature: "bold-font".into(),
            value: "yes".into(),
        });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("retryable"), Some(&Json::Bool(false)));
    }

    #[test]
    fn feature_arg_parsing_covers_tri_num_text() {
        assert_eq!(parse_feature_arg("distinct-yes"), FeatureArg::Tri(FeatureValue::DistinctYes));
        assert_eq!(parse_feature_arg("1000000"), FeatureArg::Num(1_000_000.0));
        assert_eq!(parse_feature_arg("Price:"), FeatureArg::Text("Price:".into()));
    }
}
