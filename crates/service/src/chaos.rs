//! The seeded chaos harness: replay a fault matrix against a
//! multi-session workload and check the bulkhead invariants.
//!
//! Every scenario arms exactly one fault — on the victim session's
//! engine plan (engine sites) or on the host's service plan (service
//! sites) — then runs three concurrent sessions through the same
//! workload. The invariants:
//!
//! 1. **The process never aborts.** Injected panics are contained at
//!    the rule boundary (engine) or the worker bulkhead (service).
//! 2. **Siblings are untouched.** Sessions 2 and 3 produce responses
//!    byte-identical to a solo run on a fault-free host.
//! 3. **The victim fails safe.** It either still answers exactly,
//!    answers degraded (superset-safe widening), or returns an error
//!    response — never garbage, never a hang past the watchdog.
//! 4. **Degraded state never propagates.** A session created after the
//!    victim ran still matches the solo baseline (degraded results are
//!    never cached, poisoned sessions never publish).
//!
//! Everything is seeded: the same `(seed, quick)` pair replays the
//! same matrix, so a CI failure reproduces locally.

use crate::fixture;
use crate::host::{Host, ServiceConfig};
use crate::json::Json;
use crate::protocol::Request;
use crate::server::serve_lines;
use iflex_engine::{fault, Fault, Trigger};
use std::time::Duration;

/// The outcome of one matrix replay.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Victim responses that came back exact (fault never fired or was
    /// absorbed upstream).
    pub victim_exact: usize,
    /// Victim responses that came back degraded (widened, superset-safe).
    pub victim_degraded: usize,
    /// Victim requests that came back as error responses.
    pub victim_errors: usize,
    /// Invariant violations; empty means the harness passed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held in every scenario.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "chaos: {} scenarios, victim exact/degraded/error {}/{}/{}, {} failures",
            self.scenarios,
            self.victim_exact,
            self.victim_degraded,
            self.victim_errors,
            self.failures.len()
        )
    }
}

fn chaos_cfg() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 8,
        // Short deadline + fast watchdog keep even DeadlineExpired /
        // stuck scenarios snappy.
        run_deadline: Some(Duration::from_secs(5)),
        watchdog_interval: Duration::from_millis(10),
        stuck_limit: Duration::from_millis(500),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..ServiceConfig::default()
    }
}

/// Creates a session and runs the canonical workload: answer the
/// bold-font question, fetch results. Returns the `get-results`
/// response (the comparison unit — it carries no ids or timestamps, so
/// equal runs render byte-identically).
fn workload(host: &Host, session: u64) -> Json {
    let _ = host.handle(Request::Answer {
        id: None,
        session,
        attr: fixture::ANSWER_ATTR.into(),
        feature: "bold-font".into(),
        value: "yes".into(),
    });
    host.handle(Request::GetResults { id: None, session, limit: 16 })
}

fn create(host: &Host) -> Result<u64, Json> {
    let resp = host.handle(Request::CreateSession { id: None, program: None });
    resp.get("session").and_then(Json::as_u64).ok_or(resp)
}

/// The fault-free reference: one session, one workload, solo host.
fn solo_baseline() -> String {
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
    let sid = create(&host).expect("solo create");
    let resp = workload(&host, sid);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "solo baseline must be clean");
    resp.render()
}

/// Classifies the victim's `get-results` response.
fn classify(report: &mut ChaosReport, baseline: &str, resp: &Json) {
    if resp.get("ok") == Some(&Json::Bool(false)) {
        report.victim_errors += 1;
    } else if resp.get("degraded") == Some(&Json::Bool(true)) {
        report.victim_degraded += 1;
    } else if resp.render() == baseline {
        report.victim_exact += 1;
    } else {
        // ok, not degraded, but different bytes: that is a correctness
        // hole, not a graceful failure.
        report.victim_errors += 1;
        report
            .failures
            .push(format!("victim returned clean but non-baseline result: {}", resp.render()));
    }
}

/// One engine-site scenario: arm the victim's engine, run three
/// concurrent sessions, check the invariants.
#[allow(clippy::too_many_arguments)]
fn engine_scenario(
    report: &mut ChaosReport,
    baseline: &str,
    core: iflex_engine::EngineCore,
    site: &'static str,
    trigger: Trigger,
    fault_kind: &Fault,
    seed: u64,
) {
    report.scenarios += 1;
    let label = format!("{site}/{trigger:?}/{fault_kind:?}");
    let host = Host::new(core, fixture::PROGRAM, chaos_cfg());
    let victim = match create(&host) {
        Ok(s) => s,
        Err(resp) => {
            report.failures.push(format!("{label}: victim create failed: {}", resp.render()));
            return;
        }
    };
    let siblings: Vec<u64> = (0..2).filter_map(|_| create(&host).ok()).collect();
    if siblings.len() != 2 {
        report.failures.push(format!("{label}: sibling create failed"));
        return;
    }
    assert!(host.arm_session(victim, site, trigger, fault_kind.clone(), seed));

    let host_ref = &host;
    let (victim_resp, sibling_resps) = std::thread::scope(|scope| {
        let victim_join = scope.spawn(move || workload(host_ref, victim));
        let sibling_joins: Vec<_> =
            siblings.iter().map(|&s| scope.spawn(move || workload(host_ref, s))).collect();
        (
            victim_join.join().expect("victim thread must not die"),
            sibling_joins
                .into_iter()
                .map(|j| j.join().expect("sibling thread must not die"))
                .collect::<Vec<_>>(),
        )
    });

    classify(report, baseline, &victim_resp);
    for (i, resp) in sibling_resps.iter().enumerate() {
        if resp.render() != baseline {
            report.failures.push(format!(
                "{label}: sibling {i} diverged from solo baseline:\n got {}\n want {baseline}",
                resp.render()
            ));
        }
    }

    // Invariant 4: a *fresh* session after the chaos still matches solo
    // — nothing degraded leaked into the shared core through the caches.
    for &s in &siblings {
        let _ = host.handle(Request::CloseSession { id: None, session: s });
    }
    let _ = host.handle(Request::CloseSession { id: None, session: victim });
    match create(&host) {
        Ok(fresh) => {
            let resp = workload(&host, fresh);
            if resp.render() != baseline {
                report.failures.push(format!(
                    "{label}: post-chaos fresh session diverged: {}",
                    resp.render()
                ));
            }
        }
        Err(resp) => report
            .failures
            .push(format!("{label}: post-chaos create failed: {}", resp.render())),
    }
    host.shutdown();
}

/// Service-layer scenarios: spawn, decode, write, cache-share faults
/// plus the admission-cap check. Tailored assertions per site — these
/// faults live outside any session's bulkhead.
fn service_scenarios(report: &mut ChaosReport, baseline: &str, seed: u64) {
    // session-spawn, transient: retried inside create; everything clean.
    {
        report.scenarios += 1;
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Nth(0), Fault::Io("spawn".into()), seed);
        match create(&host) {
            Ok(sid) => {
                let resp = workload(&host, sid);
                if resp.render() != baseline {
                    report.failures.push(format!(
                        "spawn/Nth(0): workload diverged: {}",
                        resp.render()
                    ));
                }
            }
            Err(resp) => report
                .failures
                .push(format!("spawn/Nth(0): create failed despite retry: {}", resp.render())),
        }
    }
    // session-spawn, permanent: rejected with a retry hint; host alive.
    {
        report.scenarios += 1;
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
        host.fault().arm(fault::site::SESSION_SPAWN, Trigger::Always, Fault::Io("spawn".into()), seed);
        let resp = host.handle(Request::CreateSession { id: None, program: None });
        if resp.get("retryable") != Some(&Json::Bool(true)) {
            report
                .failures
                .push(format!("spawn/Always: expected retryable rejection, got {}", resp.render()));
        }
        host.fault().disarm_all();
        if create(&host).is_err() {
            report.failures.push("spawn/Always: host did not recover after disarm".into());
        }
    }
    // request-decode: victim's transcript loses a request to a decode
    // fault (retryable), a concurrent direct-API sibling is untouched.
    {
        report.scenarios += 1;
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
        host.fault().arm(fault::site::REQUEST_DECODE, Trigger::Nth(0), Fault::Io("line".into()), seed);
        let sibling = create(&host).expect("sibling create");
        let (transcript, sibling_resp) = std::thread::scope(|scope| {
            let t = scope.spawn(|| {
                let mut out = Vec::new();
                serve_lines(
                    &host,
                    "{\"cmd\":\"stats\",\"id\":\"lost\"}\n{\"cmd\":\"stats\",\"id\":\"kept\"}\n"
                        .as_bytes(),
                    &mut out,
                )
                .expect("serve_lines io");
                String::from_utf8(out).expect("utf8 transcript")
            });
            let s = scope.spawn(|| workload(&host, sibling));
            (t.join().expect("transcript thread"), s.join().expect("sibling thread"))
        });
        if !transcript.lines().next().map(|l| l.contains("retryable\":true")).unwrap_or(false) {
            report.failures.push(format!("decode: first response not retryable: {transcript}"));
        }
        if !transcript.contains("\"kept\"") {
            report.failures.push("decode: second request did not survive".into());
        }
        if sibling_resp.render() != baseline {
            report
                .failures
                .push(format!("decode: sibling diverged: {}", sibling_resp.render()));
        }
    }
    // response-write: persistent write faults lose responses but leave
    // the host and a direct-API sibling fully intact.
    {
        report.scenarios += 1;
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
        host.fault().arm(fault::site::RESPONSE_WRITE, Trigger::Always, Fault::Io("wire".into()), seed);
        let sibling = create(&host).expect("sibling create");
        let mut out = Vec::new();
        serve_lines(&host, "{\"cmd\":\"stats\"}\n".as_bytes(), &mut out).expect("serve_lines io");
        if !out.is_empty() {
            report.failures.push("write/Always: response should have been lost".into());
        }
        host.fault().disarm_all();
        let resp = workload(&host, sibling);
        if resp.render() != baseline {
            report.failures.push(format!("write: sibling diverged: {}", resp.render()));
        }
    }
    // cache-share: every hand-off faulted — sessions run cold, results
    // must still be byte-identical (entries are pure; sharing is an
    // optimization, never a correctness dependency).
    {
        report.scenarios += 1;
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
        host.fault().arm(fault::site::CACHE_SHARE, Trigger::Always, Fault::Io("share".into()), seed);
        match create(&host) {
            Ok(sid) => {
                let resp = workload(&host, sid);
                if resp.render() != baseline {
                    report
                        .failures
                        .push(format!("cache-share: cold session diverged: {}", resp.render()));
                }
            }
            Err(resp) => report
                .failures
                .push(format!("cache-share: create failed: {}", resp.render())),
        }
    }
    // admission: the cap holds under a create storm.
    {
        report.scenarios += 1;
        let host = Host::new(
            fixture::tiny_core(),
            fixture::PROGRAM,
            ServiceConfig { max_sessions: 2, ..chaos_cfg() },
        );
        let created: Vec<_> = (0..4).map(|_| create(&host)).collect();
        let admitted = created.iter().filter(|r| r.is_ok()).count();
        if admitted != 2 {
            report.failures.push(format!("admission: cap 2 admitted {admitted}"));
        }
        for r in created.iter().filter_map(|r| r.as_ref().err()) {
            if r.get("retryable") != Some(&Json::Bool(true)) {
                report
                    .failures
                    .push(format!("admission: rejection not retryable: {}", r.render()));
            }
        }
    }
}

/// Flight-recorder scenarios: the two hard-failure triggers — a worker
/// panic inside the bulkhead and a watchdog cancel of a stuck run —
/// must each leave a JSONL dump holding the victim session's recent
/// events, while sibling sessions keep answering byte-identically to
/// the solo baseline. (Invariant 2 extended with the observability
/// contract: a post-mortem exists, and capturing it perturbs nobody.)
fn flight_scenarios(report: &mut ChaosReport, baseline: &str, seed: u64) {
    // Worker panic: the injected panic fires on the victim's first job.
    {
        report.scenarios += 1;
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, chaos_cfg());
        let victim = create(&host).expect("victim create");
        let siblings: Vec<u64> = (0..2).filter_map(|_| create(&host).ok()).collect();
        assert!(host.arm_session(
            victim,
            fault::site::WORKER_JOB,
            Trigger::Nth(0),
            Fault::Panic("chaos".into()),
            seed,
        ));
        let host_ref = &host;
        let (victim_resp, sibling_resps) = std::thread::scope(|scope| {
            let v = scope.spawn(move || workload(host_ref, victim));
            let s: Vec<_> =
                siblings.iter().map(|&s| scope.spawn(move || workload(host_ref, s))).collect();
            (
                v.join().expect("victim thread"),
                s.into_iter().map(|j| j.join().expect("sibling thread")).collect::<Vec<_>>(),
            )
        });
        if victim_resp.get("ok") != Some(&Json::Bool(false)) {
            report.failures.push(format!(
                "flight/panic: victim should be poisoned, got {}",
                victim_resp.render()
            ));
        }
        for (i, resp) in sibling_resps.iter().enumerate() {
            if resp.render() != baseline {
                report
                    .failures
                    .push(format!("flight/panic: sibling {i} diverged: {}", resp.render()));
            }
        }
        let dumps = host.flight_dumps();
        match dumps.iter().find(|d| d.reason == "worker_panic" && d.session == victim) {
            Some(d) => {
                // The ring must hold the victim's history up to the blast:
                // its create event precedes the panic-killed job.
                if !d.jsonl.contains("\"kind\":\"session\"") {
                    report.failures.push(format!(
                        "flight/panic: dump misses the victim's prior events: {}",
                        d.jsonl
                    ));
                }
            }
            None => report
                .failures
                .push(format!("flight/panic: no worker_panic dump for victim (have {:?})",
                    dumps.iter().map(|d| (&d.reason, d.session)).collect::<Vec<_>>())),
        }
        host.shutdown();
    }
    // Watchdog cancel: a stuck victim is cancelled and dumped; siblings
    // running the real workload concurrently stay on the baseline.
    {
        report.scenarios += 1;
        let cfg = ServiceConfig {
            watchdog_interval: Duration::from_millis(5),
            stuck_limit: Duration::from_millis(40),
            ..chaos_cfg()
        };
        let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, cfg);
        let victim = create(&host).expect("victim create");
        let siblings: Vec<u64> = (0..2).filter_map(|_| create(&host).ok()).collect();
        let host_ref = &host;
        let (victim_resp, sibling_resps) = std::thread::scope(|scope| {
            let v = scope.spawn(move || {
                host_ref.handle(Request::Sleep { id: None, session: victim, ms: 400 })
            });
            let s: Vec<_> =
                siblings.iter().map(|&s| scope.spawn(move || workload(host_ref, s))).collect();
            (
                v.join().expect("victim thread"),
                s.into_iter().map(|j| j.join().expect("sibling thread")).collect::<Vec<_>>(),
            )
        });
        if victim_resp.get("cancelled") != Some(&Json::Bool(true)) {
            report.failures.push(format!(
                "flight/watchdog: stuck run not cancelled: {}",
                victim_resp.render()
            ));
        }
        for (i, resp) in sibling_resps.iter().enumerate() {
            if resp.render() != baseline {
                report
                    .failures
                    .push(format!("flight/watchdog: sibling {i} diverged: {}", resp.render()));
            }
        }
        let dumps = host.flight_dumps();
        match dumps.iter().find(|d| d.reason == "watchdog_cancel" && d.session == victim) {
            Some(d) => {
                if !d.jsonl.contains("\"kind\":\"cancel\"") || !d.jsonl.contains("watchdog") {
                    report.failures.push(format!(
                        "flight/watchdog: dump misses the cancel event: {}",
                        d.jsonl
                    ));
                }
            }
            None => report.failures.push("flight/watchdog: no watchdog_cancel dump".into()),
        }
        host.shutdown();
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// backtrace spam of *injected* panics — they are expected and contained
/// — while leaving every real panic's diagnostics intact.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

/// Replays the matrix. `quick` trims the engine-site sweep for CI smoke
/// runs; the full sweep covers every (site × fault × trigger) combo.
pub fn run_matrix(seed: u64, quick: bool) -> ChaosReport {
    silence_injected_panics();
    let mut report = ChaosReport::default();
    let baseline = solo_baseline();

    let engine_sites: &[&'static str] = &[
        fault::site::EVAL_RULE,
        fault::site::JOIN_TUPLE,
        fault::site::GENERATOR,
        fault::site::ANNOTATE,
        fault::site::MEMO_LOOKUP,
    ];
    let faults: Vec<Fault> = if quick {
        vec![Fault::Panic("chaos".into()), Fault::TooLarge]
    } else {
        vec![
            Fault::Panic("chaos".into()),
            Fault::TooLarge,
            Fault::DeadlineExpired,
            Fault::Io("chaos".into()),
        ]
    };
    let triggers: Vec<Trigger> = if quick {
        vec![Trigger::Always]
    } else {
        vec![Trigger::Nth(0), Trigger::Always, Trigger::PerMille(350)]
    };

    let mut scenario_seed = seed;
    for site in engine_sites {
        for f in &faults {
            for t in &triggers {
                scenario_seed = scenario_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                engine_scenario(&mut report, &baseline, fixture::tiny_core(), site, *t, f, scenario_seed);
            }
        }
    }
    // Worker-steal victim: the thief panics the instant it begins a
    // stolen morsel (`engine.par_steal`) — the worst spot for the
    // dispenser's bookkeeping. Only reachable with a worker pool, so this
    // scenario runs on a core with threads and one-tuple morsels. Steals
    // are timing-dependent; a run where none happens leaves the victim
    // exact, which the invariants accept — either way the siblings and a
    // fresh post-chaos session must match the *serial* solo baseline
    // byte-for-byte, proving the parallel core computes the same bytes.
    scenario_seed = scenario_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    engine_scenario(
        &mut report,
        &baseline,
        fixture::stealing_core(),
        fault::site::PAR_STEAL,
        Trigger::Always,
        &Fault::Panic("mid-steal".into()),
        scenario_seed,
    );
    service_scenarios(&mut report, &baseline, seed);
    flight_scenarios(&mut report, &baseline, seed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_holds_every_invariant() {
        let report = run_matrix(7, true);
        assert!(report.passed(), "chaos failures:\n{}", report.failures.join("\n"));
        // 5 engine sites x 2 faults x 1 trigger + 1 worker-steal victim
        // + 6 service scenarios + 2 flight-recorder scenarios.
        assert_eq!(report.scenarios, 19);
        // Always-triggered faults must actually bite the victim.
        assert!(
            report.victim_degraded + report.victim_errors > 0,
            "no scenario perturbed the victim: {}",
            report.summary()
        );
    }

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let a = run_matrix(1729, true);
        let b = run_matrix(1729, true);
        assert_eq!(a.victim_exact, b.victim_exact);
        assert_eq!(a.victim_degraded, b.victim_degraded);
        assert_eq!(a.victim_errors, b.victim_errors);
        assert_eq!(a.failures, b.failures);
    }
}
