//! # iflex-service
//!
//! A resilient multi-session iFlex server. Many concurrent development
//! sessions (§2.2.4's execute → examine → refine loop) share one
//! immutable document store, the sharded feature memo, and the warm
//! incremental cache through an [`iflex_engine::EngineCore`], while a
//! bulkhead-per-session worker model keeps every tenant's faults —
//! panics, budget overflows, deadline expiry, injected chaos — strictly
//! contained: siblings produce byte-identical results to a solo run.
//!
//! The wire protocol is JSON lines over stdio or TCP ([`protocol`],
//! [`server`]); resilience policy (admission control, bounded-queue
//! backpressure, watchdog cancellation, graceful drain) lives in
//! [`host`]; the seeded fault-matrix harness that proves the isolation
//! claims is [`chaos`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod host;
pub mod json;
pub mod protocol;
pub mod server;

pub use chaos::{run_matrix, ChaosReport};
pub use host::{FlightDump, Host, ServiceConfig};
pub use json::Json;
pub use protocol::{decode, Request};
pub use server::{serve_lines, serve_stdio, serve_tcp};

/// Shared demo fixtures: a tiny synthetic corpus and program used by the
/// chaos harness, the `--smoke` gate, and the crate's own tests. Kept in
/// the library (not `#[cfg(test)]`) so the binary and integration tests
/// replay exactly the same workload.
pub mod fixture {
    use iflex_engine::{Engine, EngineCore};
    use iflex_text::DocumentStore;
    use std::sync::Arc;

    /// The demo program: extract the bold numeric value of each page.
    pub const PROGRAM: &str = "q(x, <v>) :- pages(x), extractV(#x, v).\n\
                               extractV(#x, v) :- from(#x, v), numeric(v) = yes.\n";

    /// The attribute the canonical workload answers about.
    pub const ANSWER_ATTR: &str = "extractV.v";

    /// Five small marked-up pages behind a shared core.
    pub fn tiny_core() -> EngineCore {
        tiny_engine().into_core()
    }

    /// [`tiny_core`] configured to maximize work-stealing: a worker pool
    /// and pathological one-tuple morsels, so the `engine.par_steal`
    /// fault site is actually reachable. Results must still be
    /// byte-identical to the serial [`tiny_core`] — parallelism is a
    /// pure performance lever, never a semantic one.
    pub fn stealing_core() -> EngineCore {
        let mut engine = tiny_engine();
        engine.limits.threads = 4;
        engine.limits.morsel_tuples = (1, 2);
        engine.into_core()
    }

    fn tiny_engine() -> Engine {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(store.add_markup(&format!(
                "pad {} <b>{}</b> tail {}",
                i * 3 + 1,
                (i + 1) * 100,
                i * 7 + 2
            )));
        }
        let mut engine = Engine::new(Arc::new(store));
        engine.add_doc_table("pages", &ids);
        engine
    }
}
