//! A minimal JSON value for the service protocol.
//!
//! The container has no `serde_json`, and the protocol only needs objects,
//! arrays, strings, numbers, booleans, and null — so the service carries
//! its own hand-rolled parser and renderer. Objects keep insertion order
//! (a `Vec` of pairs, not a map), which makes every rendered response
//! byte-deterministic: the chaos harness compares transcripts verbatim.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the protocol only uses non-negative integers and
    /// millisecond durations, all exactly representable in an `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (first write wins on `get`).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, when this is a number (integral or not).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Builds an object from pairs — the ergonomic constructor for
    /// responses.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Renders compact single-line JSON (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(v)
}

fn err(msg: &str, at: usize) -> ParseError {
    ParseError { msg: msg.to_string(), at }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| err("invalid number", start))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err("invalid \\u escape", *pos))?;
                        // Surrogate pairs are not needed by the protocol;
                        // lone surrogates render as the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| err("bad utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err("expected string key", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"cmd":"answer","session":3,"value":"distinct-yes","flag":true,"x":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("answer"));
        assert_eq!(v.get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::obj(vec![("s", Json::str("a\"b\\c\nd\te\u{1}"))]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn arrays_and_nesting() {
        let src = r#"[1, [2, {"k": [3]}], "s"]"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("nan").is_err());
    }

    #[test]
    fn numbers_render_as_integers_when_integral() {
        assert_eq!(Json::num(1500).render(), "1500");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn object_get_is_first_write_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    }
}
