//! Cross-session bulkhead isolation: N concurrent sessions on one host,
//! one of them armed with always-firing faults. The victim degrades or
//! errors; every sibling's result table stays byte-identical to a solo
//! run on a fault-free host, and nothing degraded ever reaches a later
//! session through the shared caches.

use iflex_service::{fixture, Host, Json, Request, ServiceConfig};
use iflex_engine::{fault, Fault, Trigger};
use std::time::Duration;

fn cfg() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 8,
        watchdog_interval: Duration::from_millis(10),
        stuck_limit: Duration::from_secs(2),
        ..ServiceConfig::default()
    }
}

fn create(host: &Host) -> u64 {
    host.handle(Request::CreateSession { id: None, program: None })
        .get("session")
        .and_then(Json::as_u64)
        .expect("session admitted")
}

/// The canonical workload; the `get-results` response is the comparison
/// unit (no ids, no timestamps — equal runs render byte-identically).
fn workload(host: &Host, session: u64) -> Json {
    let answer = host.handle(Request::Answer {
        id: None,
        session,
        attr: fixture::ANSWER_ATTR.into(),
        feature: "bold-font".into(),
        value: "yes".into(),
    });
    assert!(answer.get("ok").is_some());
    host.handle(Request::GetResults { id: None, session, limit: 16 })
}

fn solo_baseline() -> String {
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, cfg());
    let resp = workload(&host, create(&host));
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(false)));
    resp.render()
}

#[test]
fn concurrent_victim_panics_never_leak_into_siblings() {
    let baseline = solo_baseline();
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, cfg());
    let victim = create(&host);
    let siblings: Vec<u64> = (0..3).map(|_| create(&host)).collect();
    assert!(host.arm_session(
        victim,
        fault::site::EVAL_RULE,
        Trigger::Always,
        Fault::Panic("tenant zero is hostile".into()),
        42,
    ));

    let host_ref = &host;
    let (victim_resp, sibling_resps) = std::thread::scope(|scope| {
        let v = scope.spawn(move || workload(host_ref, victim));
        let joins: Vec<_> = siblings
            .iter()
            .map(|&s| scope.spawn(move || workload(host_ref, s)))
            .collect();
        (
            v.join().expect("victim thread survives"),
            joins.into_iter().map(|j| j.join().expect("sibling thread survives")).collect::<Vec<_>>(),
        )
    });

    // The victim is contained: its run completes degraded (superset-safe
    // widening), it does not abort the process or hang.
    assert_eq!(victim_resp.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(victim_resp.get("degraded"), Some(&Json::Bool(true)));
    assert_ne!(victim_resp.render(), baseline);

    // Every sibling matches the solo run byte for byte.
    for (i, resp) in sibling_resps.iter().enumerate() {
        assert_eq!(resp.render(), baseline, "sibling {i} diverged");
    }
}

#[test]
fn degraded_results_never_travel_through_the_shared_cache() {
    let baseline = solo_baseline();
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, cfg());

    // A victim degrades on every rule, runs, and closes — publishing
    // whatever its cache holds back to the core.
    let victim = create(&host);
    assert!(host.arm_session(
        victim,
        fault::site::EVAL_RULE,
        Trigger::Always,
        Fault::TooLarge,
        7,
    ));
    let resp = workload(&host, victim);
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)));
    let closed = host.handle(Request::CloseSession { id: None, session: victim });
    assert_eq!(closed.get("closed"), Some(&Json::Bool(true)));

    // A fresh session forked from the (possibly warmed) core still
    // produces the exact solo result: degraded tables are never cached,
    // so nothing widened can be published or shared.
    let fresh = create(&host);
    let resp = workload(&host, fresh);
    assert_eq!(resp.render(), baseline);
}

#[test]
fn poisoned_worker_is_quarantined_and_its_slot_is_reclaimed() {
    let host = Host::new(
        fixture::tiny_core(),
        fixture::PROGRAM,
        ServiceConfig { max_sessions: 2, ..cfg() },
    );
    let victim = create(&host);
    let sibling = create(&host);
    // An always-firing panic makes the victim degrade on every rule of
    // every run; the sibling on the same host must stay exact, and the
    // victim's admission slot must still be reclaimable.
    assert!(host.arm_session(
        victim,
        fault::site::EVAL_RULE,
        Trigger::Always,
        Fault::Panic("poison".into()),
        3,
    ));
    let v = workload(&host, victim);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "contained, degraded");
    assert_eq!(v.get("degraded"), Some(&Json::Bool(true)));
    let s = workload(&host, sibling);
    assert_eq!(s.get("degraded"), Some(&Json::Bool(false)));

    // Admission is at the cap; closing the victim frees its slot even
    // after all that abuse.
    let rejected = host.handle(Request::CreateSession { id: None, program: None });
    assert_eq!(rejected.get("retryable"), Some(&Json::Bool(true)));
    host.handle(Request::CloseSession { id: None, session: victim });
    let admitted = host.handle(Request::CreateSession { id: None, program: None });
    assert_eq!(admitted.get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn memo_lookup_chaos_in_one_session_leaves_siblings_exact() {
    let baseline = solo_baseline();
    let host = Host::new(fixture::tiny_core(), fixture::PROGRAM, cfg());
    let victim = create(&host);
    let sibling = create(&host);
    // Seeded probabilistic chaos on the victim's shared-cache lookups.
    assert!(host.arm_session(
        victim,
        fault::site::MEMO_LOOKUP,
        Trigger::PerMille(500),
        Fault::Panic("flaky cache".into()),
        1729,
    ));
    let host_ref = &host;
    let (v, s) = std::thread::scope(|scope| {
        let v = scope.spawn(move || {
            // Several runs so the per-mille trigger gets chances to fire.
            let mut last = workload(host_ref, victim);
            for _ in 0..4 {
                last = host_ref.handle(Request::GetResults { id: None, session: victim, limit: 16 });
            }
            last
        });
        let s = scope.spawn(move || workload(host_ref, sibling));
        (v.join().unwrap(), s.join().unwrap())
    });
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(s.render(), baseline, "sibling unaffected by victim cache chaos");
}
