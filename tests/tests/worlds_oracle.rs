//! Differential possible-worlds oracle: for tiny compact tables (≤3
//! tuples, ≤3 assignments per cell) the worlds of every engine result are
//! enumerated exactly via [`iflex_ctable::worlds`] and compared against
//! the world-by-world relational semantics — for each possible world `W`
//! of the inputs, the true operator result over `W` must appear among the
//! engine output's possible worlds (the §4 superset guarantee, checked
//! without approximation).

use iflex_alog::parse_program;
use iflex_ctable::{worlds, Assignment, Cell, CompactTable, CompactTuple, Value};
use iflex_engine::Engine;
use iflex_features::FeatureArg;
use iflex_text::{DocumentStore, Span};
use std::collections::BTreeSet;
use std::sync::Arc;

type Relation = BTreeSet<Vec<Value>>;

const BUDGET: usize = 1_000_000;

/// Numeric reading of a world-level value: exact numbers as-is, spans via
/// the text they cover (how the engine's comparison operands read cells).
fn num_of(store: &DocumentStore, v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(*n),
        Value::Span(s) => iflex_text::parse_number(store.span_text(s)),
        _ => None,
    }
}

fn exact_num(n: f64) -> Cell {
    Cell::exact(Value::Num(n))
}

/// Asserts every relation of `expected` is among the worlds of `table`.
fn assert_worlds_contain(
    table: &CompactTable,
    store: &DocumentStore,
    expected: &BTreeSet<Relation>,
    what: &str,
) {
    let engine_worlds = worlds::worlds_of_compact(table, store, BUDGET).unwrap();
    for rel in expected {
        assert!(
            engine_worlds.contains(rel),
            "{what}: world-level result {rel:?} missing from engine worlds \
             (engine has {} worlds)",
            engine_worlds.len()
        );
    }
}

/// Runs `prog_src` under both table cores (`Limits::use_columnar` on and
/// off) against the same input tables, asserts the two results have
/// identical possible-world sets, and returns the columnar result for
/// the oracle check — so every σ/π/⋈/constraint case below exercises
/// the row core and the columnar core in one pass (DESIGN.md §14).
fn run_both_cores(
    store: &Arc<DocumentStore>,
    tables: &[(&str, CompactTable)],
    prog_src: &str,
) -> CompactTable {
    let prog = parse_program(prog_src).unwrap();
    let mut results = Vec::new();
    for use_columnar in [true, false] {
        let mut eng = Engine::new(Arc::clone(store));
        eng.limits.use_columnar = use_columnar;
        for (name, t) in tables {
            eng.add_table(name, t.clone());
        }
        results.push(eng.run(&prog).unwrap());
    }
    let row = results.pop().unwrap();
    let col = results.pop().unwrap();
    assert_eq!(
        worlds::worlds_of_compact(&col, store, BUDGET).unwrap(),
        worlds::worlds_of_compact(&row, store, BUDGET).unwrap(),
        "columnar and row cores disagree on world sets: {prog_src}"
    );
    (*col).clone()
}

/// σ: `q(a) :- t(a), a < 10.` over a table mixing a certain exact tuple, a
/// choice cell (two candidate spans), and a maybe tuple. Every σ(W) must
/// be a world of the output.
#[test]
fn selection_contains_every_world_result() {
    let mut store = DocumentStore::new();
    let d = store.add_plain("5 20");
    let five = Span::new(d, 0, 1);
    let twenty = Span::new(d, 2, 4);
    let store = Arc::new(store);

    let mut t = CompactTable::new(vec!["a".into()]);
    t.push(CompactTuple::new(vec![exact_num(3.0)]));
    t.push(CompactTuple::new(vec![Cell::of(vec![
        Assignment::exact_span(five),
        Assignment::exact_span(twenty),
    ])]));
    t.push(CompactTuple::maybe(vec![exact_num(12.0)]));

    let input_worlds = worlds::worlds_of_compact(&t, &store, BUDGET).unwrap();
    assert!(input_worlds.len() > 1, "inputs must be genuinely uncertain");

    let result = run_both_cores(&store, &[("t", t)], "q(a) :- t(a), a < 10.");

    let expected: BTreeSet<Relation> = input_worlds
        .iter()
        .map(|w| {
            w.iter()
                .filter(|row| num_of(&store, &row[0]).is_some_and(|n| n < 10.0))
                .cloned()
                .collect()
        })
        .collect();
    assert_worlds_contain(&result, &store, &expected, "σ(a < 10)");
}

/// π: `q(a) :- t(a, b).` — projection must contain π_a(W) for every input
/// world, including worlds where the projected-away column was the only
/// uncertain one.
#[test]
fn projection_contains_every_world_result() {
    let mut store = DocumentStore::new();
    let d = store.add_plain("x y");
    let x = Span::new(d, 0, 1);
    let y = Span::new(d, 2, 3);
    let store = Arc::new(store);

    let mut t = CompactTable::new(vec!["a".into(), "b".into()]);
    t.push(CompactTuple::new(vec![
        exact_num(1.0),
        Cell::of(vec![Assignment::exact_span(x), Assignment::exact_span(y)]),
    ]));
    t.push(CompactTuple::maybe(vec![exact_num(2.0), exact_num(7.0)]));

    let input_worlds = worlds::worlds_of_compact(&t, &store, BUDGET).unwrap();

    let result = run_both_cores(&store, &[("t", t)], "q(a) :- t(a, b).");

    let expected: BTreeSet<Relation> = input_worlds
        .iter()
        .map(|w| w.iter().map(|row| vec![row[0].clone()]).collect())
        .collect();
    assert_worlds_contain(&result, &store, &expected, "π_a");
}

/// ⋈: `q(a, b, c) :- r(a, b), s(b2, c), b = b2.` (equality comparison is
/// how Alog spells the join, per T8). For every pair of input worlds the
/// joined relation must be a world of the output.
#[test]
fn join_contains_every_world_result() {
    let store = Arc::new(DocumentStore::new());

    let mut r = CompactTable::new(vec!["a".into(), "b".into()]);
    r.push(CompactTuple::new(vec![exact_num(1.0), exact_num(10.0)]));
    r.push(CompactTuple::maybe(vec![exact_num(2.0), exact_num(20.0)]));

    let mut s = CompactTable::new(vec!["b2".into(), "c".into()]);
    s.push(CompactTuple::new(vec![exact_num(10.0), exact_num(100.0)]));
    s.push(CompactTuple::maybe(vec![exact_num(20.0), exact_num(200.0)]));

    let r_worlds = worlds::worlds_of_compact(&r, &store, BUDGET).unwrap();
    let s_worlds = worlds::worlds_of_compact(&s, &store, BUDGET).unwrap();

    let result = run_both_cores(
        &store,
        &[("r", r), ("s", s)],
        "q(a, b, c) :- r(a, b), s(b2, c), b = b2.",
    );

    let mut expected: BTreeSet<Relation> = BTreeSet::new();
    for wr in &r_worlds {
        for ws in &s_worlds {
            let mut rel = Relation::new();
            for rr in wr {
                for sr in ws {
                    let (b, b2) = (num_of(&store, &rr[1]), num_of(&store, &sr[0]));
                    if b.is_some() && b == b2 {
                        rel.insert(vec![rr[0].clone(), rr[1].clone(), sr[1].clone()]);
                    }
                }
            }
            expected.insert(rel);
        }
    }
    assert_worlds_contain(&result, &store, &expected, "r ⋈ s");
}

/// Domain-constraint selection: `q(v) :- t(v), numeric(v) = yes.` Unlike
/// σ, a constraint is developer *knowledge* (§2.2.2): it narrows each
/// cell's candidate set, so a world where an uncertain cell chose a
/// refuted candidate is eliminated outright — it does not map to the
/// empty relation. The oracle therefore applies the candidate filter to
/// the compact input directly and enumerates the refined table's worlds.
#[test]
fn constraint_selection_contains_every_world_result() {
    let mut store = DocumentStore::new();
    let d = store.add_plain("42 abc 7");
    let n42 = Span::new(d, 0, 2);
    let abc = Span::new(d, 3, 6);
    let n7 = Span::new(d, 7, 8);
    let store = Arc::new(store);

    let mut t = CompactTable::new(vec!["v".into()]);
    t.push(CompactTuple::new(vec![Cell::of(vec![
        Assignment::exact_span(n42),
        Assignment::exact_span(abc),
    ])]));
    t.push(CompactTuple::maybe(vec![Cell::of(vec![
        Assignment::exact_span(n7),
    ])]));

    let mut eng = Engine::new(Arc::clone(&store));
    eng.add_table("t", t.clone());
    let numeric = eng.features().get("numeric").unwrap();
    let holds = |s: &Span| numeric.verify(&store, *s, &FeatureArg::yes()).unwrap();

    // The reference refinement: keep only candidates the feature verifies;
    // a tuple whose cell empties out cannot exist in any world.
    let mut refined = CompactTable::new(vec!["v".into()]);
    for tuple in t.tuples() {
        let kept: Vec<Assignment> = tuple.cells[0]
            .assignments()
            .iter()
            .filter(|a| match a {
                Assignment::Exact(Value::Span(s)) => holds(s),
                _ => false,
            })
            .cloned()
            .collect();
        if kept.is_empty() {
            continue;
        }
        let cells = vec![Cell::of(kept)];
        refined.push(if tuple.maybe {
            CompactTuple::maybe(cells)
        } else {
            CompactTuple::new(cells)
        });
    }
    let expected = worlds::worlds_of_compact(&refined, &store, BUDGET).unwrap();
    assert!(expected.len() > 1, "refined input must stay uncertain");

    let result = run_both_cores(&store, &[("t", t)], "q(v) :- t(v), numeric(v) = yes.");
    assert_worlds_contain(&result, &store, &expected, "σ_numeric(v)=yes");

    // Differential form: the same containment stated through the library's
    // superset check — every world of the reference refinement must be a
    // world of the engine result.
    assert!(
        worlds::worlds_superset(&result, &refined, &store, BUDGET).unwrap(),
        "engine result is not a worlds-superset of the reference refinement"
    );
}

/// Optimizer ablation over genuinely uncertain inputs: each oracle
/// shape (σ with comparison, π, ⋈ with a straddling equality, domain
/// constraint) must yield a **byte-identical** table with
/// `Limits::use_optimizer` on or off — not merely worlds-equivalent.
/// This extends the oracle above (which runs with the optimizer at its
/// default) with an explicit on/off differential over choice cells and
/// maybe tuples, where candidate-set handling would expose any rewrite
/// that is only set-equivalent.
#[test]
fn optimizer_ablation_is_byte_identical_on_oracle_shapes() {
    let mut store = DocumentStore::new();
    let d = store.add_plain("5 20 42");
    let five = Span::new(d, 0, 1);
    let twenty = Span::new(d, 2, 4);
    let n42 = Span::new(d, 5, 7);
    let store = Arc::new(store);

    let uncertain = |maybe: bool| {
        let mut t = CompactTable::new(vec!["a".into(), "b".into()]);
        t.push(CompactTuple::new(vec![
            Cell::of(vec![
                Assignment::exact_span(five),
                Assignment::exact_span(twenty),
            ]),
            exact_num(10.0),
        ]));
        let second = vec![Cell::of(vec![Assignment::exact_span(n42)]), exact_num(20.0)];
        t.push(if maybe {
            CompactTuple::maybe(second)
        } else {
            CompactTuple::new(second)
        });
        t
    };

    let programs = [
        "q(a) :- t(a, b), a < 10.",
        "q(a) :- t(a, b).",
        "q(a, b, c) :- t(a, b), s(b2, c), b = b2, numeric(c) = yes.",
        "q(a) :- t(a, b), numeric(a) = yes, a > 4.",
    ];
    for maybe in [false, true] {
        for prog_src in programs {
            let run = |use_optimizer: bool, use_columnar: bool| {
                let mut eng = Engine::new(Arc::clone(&store));
                eng.limits.use_optimizer = use_optimizer;
                eng.limits.use_columnar = use_columnar;
                eng.add_table("t", uncertain(maybe));
                let mut s = CompactTable::new(vec!["b2".into(), "c".into()]);
                s.push(CompactTuple::new(vec![
                    exact_num(10.0),
                    Cell::of(vec![
                        Assignment::exact_span(n42),
                        Assignment::exact_span(twenty),
                    ]),
                ]));
                s.push(CompactTuple::maybe(vec![exact_num(20.0), exact_num(7.0)]));
                eng.add_table("s", s);
                let prog = parse_program(prog_src).unwrap();
                format!("{:?}", eng.run(&prog).unwrap())
            };
            // Optimizer ablation (columnar at its default)…
            assert_eq!(
                run(true, true),
                run(false, true),
                "optimizer ablation diverged: {prog_src} (maybe={maybe})"
            );
            // …and the columnar ablation under both optimizer settings —
            // the columnar core must be byte-invisible whether the
            // constraint ran standalone or inside a fused pipeline
            // (DESIGN.md §14).
            for use_optimizer in [true, false] {
                assert_eq!(
                    run(use_optimizer, true),
                    run(use_optimizer, false),
                    "columnar ablation diverged: {prog_src} \
                     (maybe={maybe}, optimizer={use_optimizer})"
                );
            }
        }
    }
}
