//! End-to-end trace replay (satellite 4): run a traced session, dump the
//! journal as JSONL, parse it back through the same path `exp_trace`
//! uses, and check the span-nesting contract — every child closes inside
//! its parent — plus the report renderings.

use iflex::prelude::*;
use iflex::Session;
use iflex_alog::parse_program;
use iflex_bench::trace_report::{
    iteration_timeline, operator_self_time, render_report, rule_self_time,
};
use iflex_engine::obs::{parse_jsonl, validate_nesting, SpanKind};
use iflex_engine::Engine;
use iflex_text::DocumentStore;
use std::sync::Arc;

fn engine() -> Engine {
    let mut store = DocumentStore::new();
    let mut ids = Vec::new();
    for i in 0..8 {
        ids.push(store.add_markup(&format!(
            "junk {} words <b>{}</b> tail {}",
            i * 3 + 1,
            (i + 1) * 100,
            i * 7 + 2
        )));
    }
    let mut eng = Engine::new(Arc::new(store));
    eng.add_doc_table("pages", &ids);
    // Tracing enabled through the limits flag, not IFLEX_TRACE: tests
    // must not depend on (or mutate) the process environment.
    eng.limits.trace = true;
    eng
}

fn traced_session() -> Session {
    let program = parse_program(
        r#"
        q(x, <v>) :- pages(x), extractV(#x, v).
        extractV(#x, v) :- from(#x, v), numeric(v) = yes.
    "#,
    )
    .unwrap();
    let oracle = OracleSpec::new().knows(
        "extractV.v",
        "bold-font",
        iflex_features::FeatureArg::yes(),
    );
    let mut session = Session::new(
        engine(),
        program,
        Box::new(Sequential),
        Box::new(SimulatedDeveloper::new(oracle)),
    );
    session.config.use_sampling = false;
    session
}

#[test]
fn jsonl_dump_replays_with_well_formed_nesting() {
    let mut session = traced_session();
    let out = session.run().expect("session runs");
    assert!(!out.table.is_empty());

    // Dump → parse must be lossless, and nesting must validate.
    let jsonl = session.engine.tracer.to_jsonl();
    let events = parse_jsonl(&jsonl).expect("parse dump");
    assert_eq!(events, session.engine.tracer.events(), "lossless replay");
    let spans = validate_nesting(&events).expect("well-formed nesting");

    // The whole taxonomy shows up: session → iteration → run → rule →
    // operator, and question spans in refining iterations.
    for kind in [
        SpanKind::Session,
        SpanKind::Iteration,
        SpanKind::Question,
        SpanKind::Run,
        SpanKind::Rule,
        SpanKind::Operator,
    ] {
        assert!(
            spans.iter().any(|s| s.kind == kind),
            "no {kind:?} span in the dump"
        );
    }

    // Every run nests under an iteration, every operator under a rule.
    let find = |id: u64| spans.iter().find(|s| s.id == id).unwrap();
    for s in &spans {
        match s.kind {
            SpanKind::Run => assert_eq!(find(s.parent).kind, SpanKind::Iteration),
            SpanKind::Operator => assert!(matches!(
                find(s.parent).kind,
                SpanKind::Rule | SpanKind::Operator
            )),
            _ => {}
        }
    }

    // The exp_trace renderings work off the replayed spans.
    let rules = rule_self_time(&spans);
    assert!(!rules.is_empty(), "per-rule table has rows");
    assert!(rules.iter().all(|r| r.self_us <= r.inclusive_us));
    let ops = operator_self_time(&spans);
    assert!(ops.iter().any(|o| o.name == "scan_ext"));
    let timeline = iteration_timeline(&spans);
    assert!(!timeline.is_empty(), "timeline has iterations");
    assert!(timeline.iter().all(|r| r.runs >= 1));
    let report = render_report(&spans, &events);
    assert!(report.contains("Per-rule self time"));
    assert!(report.contains("Assistant iteration timeline"));
}

#[test]
fn final_stats_travel_with_the_chosen_attempt() {
    let mut session = traced_session();
    let out = session.run().expect("session runs");
    // Satellite 1: the outcome's stats describe exactly the chosen final
    // run — counters reset per run, so a clean final run reports zero
    // degradations and a fresh feature-cache tally.
    assert!(out.final_stats.degradations.is_empty());
    assert_eq!(
        out.final_stats.assignments_produced,
        out.records.last().unwrap().assignments
    );
    assert!(out.final_stats.rules_evaluated + out.final_stats.cache_hits > 0);
}
