//! End-to-end integration tests: full iFlex sessions (execute → ask →
//! refine → converge) over the synthetic corpora, checked against ground
//! truth.

use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};

fn corpus() -> Corpus {
    Corpus::build(CorpusConfig::tiny())
}

/// Runs a full session for `id` over the first `n` records and returns
/// `(quality, outcome)`.
fn run_task(
    c: &Corpus,
    id: TaskId,
    n: Option<usize>,
    strategy: Box<dyn Strategy>,
) -> (iflex::Quality, iflex::SessionOutcome) {
    let task = c.task(id, n);
    let engine = task.engine(c);
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        strategy,
        Box::new(SimulatedDeveloper::new(task.oracle.clone())),
    );
    if task.needs_type_cleanup {
        // already registered by task.engine(); charge the cleanup cost
        session.clock.charge_cleanup(session.cost.write_cleanup_secs);
    }
    let outcome = session.run().expect("session runs");
    let q = iflex::score(
        &outcome.table,
        &task.truth_cols,
        &task.truth,
        session.engine.store(),
    );
    (q, outcome)
}

#[test]
fn t1_converges_to_exact_result() {
    let c = corpus();
    let (q, out) = run_task(&c, TaskId::T1, Some(30), Box::new(Sequential));
    assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
    assert!((q.recall - 1.0).abs() < 1e-9);
    assert!(out.questions_asked >= 2);
}

#[test]
fn t2_year_range_exact() {
    let c = corpus();
    let (q, _) = run_task(&c, TaskId::T2, Some(30), Box::new(Sequential));
    assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
    assert!((q.recall - 1.0).abs() < 1e-9);
    assert!(q.correct_tuples > 0);
}

#[test]
fn t4_journal_pubs_exact() {
    let c = corpus();
    let (q, _) = run_task(&c, TaskId::T4, Some(30), Box::new(Sequential));
    assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
    assert!((q.recall - 1.0).abs() < 1e-9);
    assert_eq!(q.correct_tuples, 10); // every third of 30
}

#[test]
fn t5_short_papers_sim_exact_seq_superset() {
    let c = corpus();
    // Sequential exhausts one attribute and converges early to a superset
    // (the Table 5 phenomenon); Simulation refines every attribute.
    let (q_seq, _) = run_task(&c, TaskId::T5, Some(40), Box::new(Sequential));
    assert!((q_seq.recall - 1.0).abs() < 1e-9);
    assert!(q_seq.superset_pct >= 100.0);
    let (q_sim, _) = run_task(&c, TaskId::T5, Some(40), Box::new(Simulation::default()));
    assert_eq!(q_sim.result_tuples, q_sim.correct_tuples, "{q_sim:?}");
    assert!((q_sim.recall - 1.0).abs() < 1e-9);
    assert!(q_sim.superset_pct <= q_seq.superset_pct);
}

#[test]
fn t7_expensive_books_exact_under_both_strategies() {
    let c = corpus();
    for strat in [0, 1] {
        let s: Box<dyn Strategy> = if strat == 0 {
            Box::new(Sequential)
        } else {
            Box::new(Simulation::default())
        };
        let (q, _) = run_task(&c, TaskId::T7, Some(40), s);
        assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
        assert!((q.recall - 1.0).abs() < 1e-9);
    }
}

#[test]
fn t8_price_relations_sim_exact_seq_superset() {
    let c = corpus();
    let (q_seq, _) = run_task(&c, TaskId::T8, Some(40), Box::new(Sequential));
    assert!((q_seq.recall - 1.0).abs() < 1e-9);
    assert!(q_seq.superset_pct > 100.0, "{q_seq:?}");
    let (q_sim, _) = run_task(&c, TaskId::T8, Some(40), Box::new(Simulation::default()));
    assert_eq!(q_sim.result_tuples, q_sim.correct_tuples, "{q_sim:?}");
    assert!((q_sim.recall - 1.0).abs() < 1e-9);
}

#[test]
fn t3_triple_join_sim_exact() {
    let c = corpus();
    let (q, _) = run_task(&c, TaskId::T3, Some(30), Box::new(Simulation::default()));
    assert!((q.recall - 1.0).abs() < 1e-9, "{q:?}");
    assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
    assert!(q.correct_tuples > 0);
}

#[test]
fn t6_shared_authors_sim_exact_seq_superset() {
    let c = corpus();
    let (q_seq, _) = run_task(&c, TaskId::T6, Some(40), Box::new(Sequential));
    assert!((q_seq.recall - 1.0).abs() < 1e-9, "{q_seq:?}");
    let (q_sim, _) = run_task(&c, TaskId::T6, Some(40), Box::new(Simulation::default()));
    assert_eq!(q_sim.result_tuples, q_sim.correct_tuples, "{q_sim:?}");
    assert!(q_sim.superset_pct <= q_seq.superset_pct);
    assert!(q_sim.correct_tuples > 0);
}

#[test]
fn t9_price_comparison_sim_exact() {
    let c = corpus();
    let (q, _) = run_task(&c, TaskId::T9, Some(40), Box::new(Simulation::default()));
    assert!((q.recall - 1.0).abs() < 1e-9, "{q:?}");
    assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
    assert!(q.correct_tuples > 0);
}

#[test]
fn initial_programs_overextract_then_shrink() {
    let c = corpus();
    let task = c.task(TaskId::T1, Some(30));
    let mut engine = task.engine(&c);
    let initial = engine.run(&task.program).unwrap();
    let initial_size = initial.expanded_len(engine.store());
    assert!(
        initial_size as usize > task.truth.len(),
        "initial approximate result must be a strict superset: {initial_size} vs {}",
        task.truth.len()
    );
    // and it must cover the truth (superset semantics)
    let q = iflex::score(&initial, &task.truth_cols, &task.truth, engine.store());
    assert!((q.recall - 1.0).abs() < 1e-9);
}

#[test]
fn simulation_strategy_also_converges_t1() {
    let c = corpus();
    let (q, _) = run_task(&c, TaskId::T1, Some(20), Box::new(Simulation::default()));
    assert!((q.recall - 1.0).abs() < 1e-9, "{q:?}");
    assert!(q.superset_pct <= 200.0, "{q:?}");
}

#[test]
fn dblife_panel_task_recall() {
    let c = corpus();
    let (q, out) = run_task(&c, TaskId::Panel, None, Box::new(Sequential));
    assert!(q.recall >= 0.99, "{q:?}");
    assert!(out.questions_asked >= 2);
}

#[test]
fn dblife_chair_task_with_cleanup() {
    let c = corpus();
    let (q, out) = run_task(&c, TaskId::Chair, None, Box::new(Sequential));
    assert!(q.recall >= 0.99, "{q:?}");
    assert!(out.cleanup_minutes > 0.0);
}

#[test]
fn converged_results_are_certain_and_precise() {
    // After convergence under the simulation strategy the answer bracket
    // collapses: certain == superset == truth (certain precision 1.0).
    let c = corpus();
    for (id, n) in [(TaskId::T1, Some(30)), (TaskId::T7, Some(40))] {
        let (q, _) = run_task(&c, id, n, Box::new(Simulation::default()));
        assert!((q.certain_precision - 1.0).abs() < 1e-9, "{id:?} {q:?}");
        assert_eq!(q.certain_tuples, q.correct_tuples, "{id:?} {q:?}");
    }
}

#[test]
fn unrefined_results_have_wide_brackets() {
    // Before refinement the superset is large and little is certain.
    let c = corpus();
    let task = c.task(TaskId::T1, Some(30));
    let mut engine = task.engine(&c);
    let initial = engine.run(&task.program).unwrap();
    let q = iflex::score(&initial, &task.truth_cols, &task.truth, engine.store());
    assert!(q.result_tuples > q.correct_tuples);
    assert!(q.certain_tuples <= q.result_tuples);
}

#[test]
fn example_markup_feedback_accelerates_convergence() {
    // §5.1.1: marking up one true votes value answers all its appearance
    // questions at once and still converges exactly.
    let c = corpus();
    let task = c.task(TaskId::T1, Some(30));
    let engine = task.engine(&c);
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        Box::new(Simulation::default()),
        Box::new(SimulatedDeveloper::new(task.oracle.clone())),
    );
    // highlight the true votes span of the first record
    let (doc, rec) = &c.movies.imdb[0];
    let text = c.store.doc(*doc).text().to_string();
    let pos = text.find(&rec.votes.to_string()).unwrap() as u32;
    let span = iflex::text::Span::new(*doc, pos, pos + rec.votes.to_string().len() as u32);
    assert!(session.add_example("extractIMDB.votes", span, true));
    let out = session.run().unwrap();
    let q = iflex::score(&out.table, &task.truth_cols, &task.truth, session.engine.store());
    assert_eq!(q.result_tuples, q.correct_tuples, "{q:?}");
    // the derived constraints landed in the description rule
    let prog = session.program().to_string();
    assert!(prog.contains("underlined(votes) = distinct-yes"), "{prog}");
}

#[test]
fn add_example_rejects_unknown_attribute() {
    let c = corpus();
    let task = c.task(TaskId::T1, Some(10));
    let engine = task.engine(&c);
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        Box::new(Sequential),
        Box::new(SimulatedDeveloper::new(task.oracle.clone())),
    );
    let span = iflex::text::Span::new(c.movies.imdb[0].0, 0, 2);
    assert!(!session.add_example("nope.v", span, true));
}

#[test]
fn cleanup_last_author_scenario_end_to_end() {
    // §2.2.4: extract citations and their author *lists* declaratively
    // (here the lists are italic-distinct, so the extraction is exact),
    // then a cleanup procedure picks the last author — the paper's DBLP
    // example verbatim.
    let mut store = iflex::text::DocumentStore::new();
    let docs = vec![
        store.add_markup(
            "<b>Mediators in the architecture of future systems</b> by              <i>Hector Garcia-Molina, Jennifer Widom, Jeff Ullman</i> TODS 1992",
        ),
        store.add_markup(
            "<b>The TSIMMIS approach</b> by <i>Sudarshan Chawathe, Hector Garcia-Molina</i>              VLDB 1994",
        ),
    ];
    let mut engine = iflex::engine::Engine::new(std::sync::Arc::new(store));
    engine.add_doc_table("pubs", &docs);
    engine
        .procs_mut()
        .register_generator("lastAuthor", 1, iflex::cleanup::last_of_list(','));
    let prog = iflex::alog::parse_program(
        r#"
        q(title, last) :- pubs(x), extractPub(#x, title, authors),
                          lastAuthor(#authors, last).
        extractPub(#x, t, a) :- from(#x, t), from(#x, a),
            bold-font(t) = distinct-yes, italic-font(a) = distinct-yes.
    "#,
    )
    .unwrap();
    let result = engine.run(&prog).unwrap();
    let store = engine.store();
    let mut lasts: Vec<String> = result
        .tuples()
        .iter()
        .map(|t| {
            t.cells[1]
                .singleton(store)
                .expect("exact inputs give exact cleanup outputs")
                .as_text(store)
                .to_string()
        })
        .collect();
    lasts.sort();
    assert_eq!(lasts, vec!["Hector Garcia-Molina", "Jeff Ullman"]);
    assert!(result.tuples().iter().all(|t| !t.maybe));
}

#[test]
fn dblife_project_task_recall() {
    let c = corpus();
    let (q, _) = run_task(&c, TaskId::Project, None, Box::new(Simulation::default()));
    assert!(q.recall >= 0.99, "{q:?}");
}

#[test]
fn simulated_minutes_track_questions() {
    // more questions ⇒ more simulated developer time (cost model sanity)
    let c = corpus();
    let (_, fast) = run_task(&c, TaskId::T2, Some(30), Box::new(Sequential));
    let (_, slow) = run_task(&c, TaskId::T8, Some(40), Box::new(Simulation::default()));
    if slow.questions_asked > fast.questions_asked {
        assert!(slow.minutes >= fast.minutes, "{} vs {}", slow.minutes, fast.minutes);
    }
}

#[test]
fn iteration_records_cover_the_whole_session() {
    let c = corpus();
    let task = c.task(TaskId::T4, Some(20));
    let engine = task.engine(&c);
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        Box::new(Sequential),
        Box::new(SimulatedDeveloper::new(task.oracle.clone())),
    );
    let out = session.run().unwrap();
    assert_eq!(out.iterations, out.records.len());
    // iteration indices are 1-based and contiguous
    for (i, r) in out.records.iter().enumerate() {
        assert_eq!(r.iteration, i + 1);
    }
    // questions in records sum to the session total
    let q_sum: usize = out.records.iter().map(|r| r.questions_this_iter).sum();
    assert_eq!(q_sum, out.questions_asked);
}

/// Optimizer ablation at session level: a full iFlex session (subset
/// iterations, questions, refinement, convergence, final full run) must
/// be **observationally identical** with `Limits::use_optimizer` on or
/// off — same final table bytes, same [`iflex::StopReason`], same
/// iteration and question counts. Plan rewriting is invisible to the
/// whole interactive loop, not just to single executions.
#[test]
fn session_stop_reason_and_table_survive_optimizer_ablation() {
    let c = corpus();
    for id in [TaskId::T1, TaskId::T5] {
        let run = |use_optimizer: bool| {
            let task = c.task(id, Some(20));
            let mut engine = task.engine(&c);
            engine.limits.use_optimizer = use_optimizer;
            // ablate the incremental cache too, per the engine's own
            // warn-once guidance, so both runs are cold
            engine.limits.use_incremental = false;
            let mut session = iflex::Session::new(
                engine,
                task.program.clone(),
                Box::new(Sequential),
                Box::new(SimulatedDeveloper::new(task.oracle.clone())),
            );
            if task.needs_type_cleanup {
                session.clock.charge_cleanup(session.cost.write_cleanup_secs);
            }
            let out = session.run().expect("session runs");
            (
                format!("{:?}", out.table),
                out.stop,
                out.iterations,
                out.questions_asked,
            )
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on, off, "session ablation diverged for {id:?}");
    }
}
