//! Integration tests that encode the paper's own worked examples: the
//! Figure 1/2 house-hunting pipeline, Example 1.1's iterative narrowing,
//! Example 2.3's annotations, and the §4.2 multi-constraint semantics.

use iflex::prelude::*;
use std::sync::Arc;

fn example_store() -> (Arc<DocumentStore>, Vec<DocId>, Vec<DocId>) {
    let mut store = DocumentStore::new();
    let houses = vec![
        store.add_markup(
            "$351,000 Cozy house on quiet street. 5146 Windsor Ave., Champaign \
             Sqft: 2750 price 351000 High school: <i>Vanhise High</i>",
        ),
        store.add_markup(
            "$619,000 Amazing house in great location. 3112 Stonecreek Blvd., Cherry Hills \
             Sqft: 4700 price 619000 High school: <i>Basktall HS</i>",
        ),
    ];
    let schools = vec![
        store.add_markup(
            "<h2>Top High Schools (page 1)</h2> <b>Basktall</b>, Cherry Hills \
             <b>Franklin</b>, Robeson <b>Vanhise</b>, Champaign",
        ),
        store.add_markup(
            "<h2>Top High Schools (page 2)</h2> <b>Hoover</b>, Akron <b>Ossage</b>, Lynneville",
        ),
    ];
    (Arc::new(store), houses, schools)
}

fn engine() -> (Engine, Vec<DocId>, Vec<DocId>) {
    let (store, houses, schools) = example_store();
    let mut e = Engine::new(store);
    e.add_doc_table("housePages", &houses);
    e.add_doc_table("schoolPages", &schools);
    (e, houses, schools)
}

/// Example 1.1: an underspecified program returns an approximate superset
/// immediately; adding one constraint narrows it.
#[test]
fn example_1_1_iterative_narrowing() {
    let (mut eng, _, _) = engine();
    let initial = parse_program(
        r#"
        q(x) :- housePages(x), extractPrice(#x, p), p > 500000.
        extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
    "#,
    )
    .unwrap();
    let r1 = eng.run(&initial).unwrap();
    // Both pages contain *some* number above 500000? Only x2 does.
    assert_eq!(r1.len(), 1);
    assert!(r1.tuples()[0].maybe, "kept page is uncertain");

    let refined = parse_program(
        r#"
        q(x) :- housePages(x), extractPrice(#x, p), p > 500000.
        extractPrice(#x, p) :- from(#x, p), numeric(p) = yes,
                               preceded-by(p) = "price".
    "#,
    )
    .unwrap();
    let r2 = eng.run(&refined).unwrap();
    assert_eq!(r2.len(), 1);
    // now the price is exact and the comparison certain
    assert!(!r2.tuples()[0].maybe, "refined tuple is certain");
}

/// Figure 2 / Example 2.2: the full pipeline keeps exactly the
/// (x2, 619000, 4700, "Basktall HS") answer.
#[test]
fn figure_2_full_pipeline() {
    let (mut eng, _, schools) = engine();
    let program = parse_program(
        r#"
        houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(#x, p, a, h).
        schools(s)? :- schoolPages(y), extractSchools(#y, s).
        Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000,
                         a > 4500, approxMatch(#h, #s).
        extractHouses(#x, p, a, h) :- from(#x, p), from(#x, a), from(#x, h),
                                      numeric(p) = yes, preceded-by(p) = "price",
                                      numeric(a) = yes, preceded-by(a) = "Sqft:",
                                      italic-font(h) = distinct-yes.
        extractSchools(#y, s) :- from(#y, s), bold-font(s) = distinct-yes.
    "#,
    )
    .unwrap();
    let result = eng.run(&program).unwrap();
    assert_eq!(result.len(), 1);
    let store = eng.store();
    let t = &result.tuples()[0];
    assert_eq!(
        t.cells[1].singleton(store).and_then(|v| v.as_num(store)),
        Some(619000.0)
    );
    assert_eq!(
        t.cells[2].singleton(store).and_then(|v| v.as_num(store)),
        Some(4700.0)
    );
    let h = t.cells[3].singleton(store).unwrap();
    assert_eq!(h.as_text(store), "Basktall HS");
    // the school came from the school pages (existence-annotated → maybe)
    assert!(t.maybe);
    let _ = schools;
}

/// Example 2.3's shape: with attribute annotations, each house page yields
/// exactly one tuple whose annotated cells carry the value choices.
#[test]
fn example_2_3_attribute_annotation_one_tuple_per_page() {
    let (mut eng, houses, _) = engine();
    let program = parse_program(
        r#"
        houses(x, <p>) :- housePages(x), extractPrice(#x, p).
        extractPrice(#x, p) :- from(#x, p), numeric(p) = yes.
    "#,
    )
    .unwrap();
    let result = eng.run(&program).unwrap();
    assert_eq!(result.len(), houses.len(), "one tuple per page");
    let store = eng.store();
    for t in result.tuples() {
        assert!(!t.maybe, "keys are certain: every page has one house");
        assert!(t.cells[1].value_set(store).len() >= 3, "price choices kept");
    }
}

/// §4.2: applying constraints in either order yields the same result.
#[test]
fn constraint_order_independence_end_to_end() {
    let (mut eng, _, _) = engine();
    let a = parse_program(
        r#"
        q(x, p) :- housePages(x), e(#x, p).
        e(#x, p) :- from(#x, p), numeric(p) = yes, preceded-by(p) = "price".
    "#,
    )
    .unwrap();
    let b = parse_program(
        r#"
        q(x, p) :- housePages(x), e(#x, p).
        e(#x, p) :- from(#x, p), preceded-by(p) = "price", numeric(p) = yes.
    "#,
    )
    .unwrap();
    let ra = eng.run(&a).unwrap();
    let rb = eng.run(&b).unwrap();
    let store = eng.store();
    assert_eq!(ra.len(), rb.len());
    for (ta, tb) in ra.tuples().iter().zip(rb.tuples()) {
        assert_eq!(ta.cells[1].value_set(store), tb.cells[1].value_set(store));
    }
}

/// The superset guarantee (§4): the true answer is always present in the
/// tuple universe of every intermediate program, however weak.
#[test]
fn superset_semantics_hold_through_refinement() {
    let (mut eng, _, _) = engine();
    let stages = [
        r#"
        q(p) :- housePages(x), e(#x, p).
        e(#x, p) :- from(#x, p).
        "#,
        r#"
        q(p) :- housePages(x), e(#x, p).
        e(#x, p) :- from(#x, p), numeric(p) = yes.
        "#,
        r#"
        q(p) :- housePages(x), e(#x, p).
        e(#x, p) :- from(#x, p), numeric(p) = yes, preceded-by(p) = "price".
        "#,
    ];
    let store = eng.store().clone();
    let _ = store;
    for src in stages {
        let prog = parse_program(src).unwrap();
        let result = eng.run(&prog).unwrap();
        let store = eng.store();
        for truth in ["351000", "619000"] {
            let covered = result.tuples().iter().any(|t| {
                t.cells[0]
                    .values(store)
                    .any(|v| v.as_text(store) == truth)
            });
            assert!(covered, "true price {truth} lost in stage:\n{src}");
        }
    }
}

#[test]
fn figure_3_compact_condensation() {
    // Figure 3: the houses table condenses the h attribute to a single
    // contain("Cozy … High") assignment, and the schools table condenses
    // all bold sub-spans into contain assignments under one expansion cell.
    let (store, houses, schools) = {
        let mut store = DocumentStore::new();
        let houses = vec![store.add_markup(
            "Cozy house on quiet street. 5146 Windsor Ave., Champaign \
             Sqft: 2750 High school: Vanhise High",
        )];
        let schools = vec![store.add_markup(
            "<b>Basktall</b>, Cherry Hills <b>Franklin</b>, Robeson",
        )];
        (Arc::new(store), houses, schools)
    };
    let mut engine = Engine::new(store);
    engine.add_doc_table("housePages", &houses);
    engine.add_doc_table("schoolPages", &schools);

    // h unconstrained: one contain assignment spanning the whole record
    let houses_prog = parse_program(
        "q(x, h) :- housePages(x), e(#x, h).\ne(#x, h) :- from(#x, h).",
    )
    .unwrap();
    let t = engine.run(&houses_prog).unwrap();
    assert_eq!(t.len(), 1);
    let h_cell = &t.tuples()[0].cells[1];
    assert!(h_cell.is_expand());
    assert_eq!(h_cell.assignments().len(), 1, "one contain, not an enumeration");
    assert!(matches!(
        h_cell.assignments()[0],
        iflex::ctable::Assignment::Contain(_)
    ));

    // schools: bold-font(s) = yes condenses to one contain per bold region
    let schools_prog = parse_program(
        "q(s) :- schoolPages(y), e(#y, s).\ne(#y, s) :- from(#y, s), bold-font(s) = yes.",
    )
    .unwrap();
    let t = engine.run(&schools_prog).unwrap();
    let s_cell = &t.tuples()[0].cells[0];
    assert!(s_cell.is_expand());
    assert_eq!(s_cell.assignments().len(), 2, "two bold regions → two contains");
    let store = engine.store();
    let texts: Vec<&str> = s_cell
        .assignments()
        .iter()
        .map(|a| store.span_text(&a.span().unwrap()))
        .collect();
    assert_eq!(texts, vec!["Basktall", "Franklin"]);
}

#[test]
fn sampled_runs_are_deterministic() {
    let (mut eng, _, _) = {
        let mut store = DocumentStore::new();
        let mut ids = Vec::new();
        for i in 0..40 {
            ids.push(store.add_plain(format!("rec {} val {}", i, i * 7)));
        }
        let mut e = Engine::new(Arc::new(store));
        e.add_doc_table("pages", &ids);
        (e, ids, ())
    };
    let prog = parse_program(
        "q(x, v) :- pages(x), e(#x, v).\ne(#x, v) :- from(#x, v), numeric(v) = yes.",
    )
    .unwrap();
    let s = Sample::new(0.3, 99);
    let a = eng.run_sampled(&prog, s).unwrap();
    eng.clear_cache();
    let b = eng.run_sampled(&prog, s).unwrap();
    assert_eq!(a, b);
    let c = eng.run_sampled(&prog, Sample::new(0.3, 100)).unwrap();
    assert!(a != c || a.len() == 40, "different seeds select different subsets");
}
