//! Integration tests of the engine's two usage modes (§2): classic
//! *precise Xlog* with procedural IE predicates plugged in as registered
//! generators, and *best-effort Alog* with description rules — plus the
//! failure paths (budgets, validation, bad procedures).

use iflex::prelude::*;
use iflex_corpus::{Corpus, CorpusConfig, TaskId};
use iflex_text::markup::style;

/// The paper's original workflow: IE predicates implemented procedurally
/// (the "Perl modules"), executed by the same engine. The results must be
/// exact (no maybe tuples) and equal to ground truth.
#[test]
fn precise_xlog_mode_through_the_engine() {
    let c = Corpus::build(CorpusConfig::tiny());
    let imdb_docs: Vec<_> = c.movies.imdb.iter().map(|(d, _)| *d).collect();
    let mut engine = iflex::engine::Engine::new(c.store.clone());
    engine.add_doc_table("imdb", &imdb_docs);
    // the procedural extractor: exactly what §2.1 calls a p-predicate
    engine
        .procs_mut()
        .register_generator("extractIMDB", 2, |store, args| {
            let Some(Value::Span(x)) = args.first() else {
                return vec![];
            };
            let doc = store.doc(x.doc);
            let Some((ts, te)) = doc
                .styled_regions(x.start, x.end, style::BOLD)
                .into_iter()
                .next()
            else {
                return vec![];
            };
            let text = doc.text();
            let Some(vpos) = text.find("votes") else {
                return vec![];
            };
            let tail = text[vpos + 5..].trim_start();
            let vend = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            let Some(votes) = iflex::text::parse_number(&tail[..vend]) else {
                return vec![];
            };
            vec![vec![
                Value::Span(iflex::text::Span::new(x.doc, ts, te)),
                Value::Num(votes),
            ]]
        });
    // Table 2's T1 program, verbatim shape, no description rules at all
    let prog = parse_program(
        "t1(title) :- imdb(x), extractIMDB(#x, title, votes), votes < 25000.",
    )
    .unwrap();
    let result = engine.run(&prog).unwrap();
    assert!(result.tuples().iter().all(|t| !t.maybe), "precise mode");
    let task = c.task(TaskId::T1, None);
    let q = iflex::score(&result, &task.truth_cols, &task.truth, engine.store());
    assert_eq!(q.result_tuples, q.correct_tuples);
    assert!((q.recall - 1.0).abs() < 1e-9);
    assert!((q.certain_precision - 1.0).abs() < 1e-9);
}

#[test]
fn best_effort_and_precise_modes_agree() {
    // The refined best-effort program and the procedural program compute
    // the same relation.
    let c = Corpus::build(CorpusConfig::tiny());
    let task = c.task(TaskId::T7, Some(30));
    // best-effort, fully refined
    let mut engine = task.engine(&c);
    let refined = parse_program(
        r#"
        t7(title) :- barnes(x), extractBarnes(#x, title, price), price > 100.
        extractBarnes(#x, title, price) :- from(#x, title), from(#x, price),
            bold-font(title) = distinct-yes, numeric(price) = yes,
            underlined(price) = distinct-yes.
    "#,
    )
    .unwrap();
    let best_effort = engine.run(&refined).unwrap();
    let precise = iflex_baseline::run_precise(&c, TaskId::T7, Some(30));
    assert_eq!(best_effort.expanded_len(engine.store()) as usize, precise.len());
}

#[test]
fn too_large_budget_degrades_instead_of_failing() {
    let c = Corpus::build(CorpusConfig::tiny());
    let task = c.task(TaskId::T9, Some(40));
    let mut engine = task.engine(&c);
    engine.limits.max_result_tuples = 10; // absurdly small
    let result = engine.run(&task.program).expect("degrades, not fails");
    assert!(engine.stats.degraded(), "budget overflow must be recorded");
    assert!(engine
        .stats
        .degradations
        .iter()
        .any(|d| d.cause == iflex::engine::DegradeCause::Budget));
    assert!(!result.is_empty(), "widened stand-ins keep the superset");
    assert!(
        result.tuples().iter().any(|t| t.maybe),
        "degraded tuples are marked maybe"
    );
}

#[test]
fn strict_mode_still_fails_hard_on_budget() {
    let c = Corpus::build(CorpusConfig::tiny());
    let task = c.task(TaskId::T9, Some(40));
    let mut engine = task.engine(&c);
    engine.limits.max_result_tuples = 10;
    engine.limits.degrade = false; // opt out of graceful degradation
    match engine.run(&task.program) {
        Err(iflex::engine::EngineError::TooLarge(_)) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn session_survives_budget_overflow_via_subset_fallback() {
    let c = Corpus::build(CorpusConfig::tiny());
    let task = c.task(TaskId::T9, Some(40));
    let mut engine = task.engine(&c);
    engine.limits.max_result_tuples = 2_000; // full joins blow this
    let mut session = iflex::Session::new(
        engine,
        task.program.clone(),
        Box::new(Sequential),
        Box::new(SimulatedDeveloper::new(iflex::OracleSpec::new())), // knows nothing
    );
    session.config.max_iterations = 4;
    let out = session.run().expect("falls back to the subset result");
    assert!(!out.full_run_within_budget);
    assert!(!out.table.is_empty());
}

#[test]
fn generator_arity_mismatch_is_an_error() {
    let c = Corpus::build(CorpusConfig::tiny());
    let docs: Vec<_> = c.movies.imdb.iter().take(3).map(|(d, _)| *d).collect();
    let mut engine = iflex::engine::Engine::new(c.store.clone());
    engine.add_doc_table("pages", &docs);
    engine
        .procs_mut()
        .register_generator("bad", 1, |_, _| vec![vec![Value::Num(1.0), Value::Num(2.0)]]);
    let prog = parse_program("q(x, v) :- pages(x), bad(#x, v).").unwrap();
    match engine.run(&prog) {
        Err(iflex::engine::EngineError::BadProcedure(msg)) => {
            assert!(msg.contains("arity"), "{msg}")
        }
        other => panic!("expected BadProcedure, got {other:?}"),
    }
}

#[test]
fn validation_errors_are_collected_not_panicked() {
    let c = Corpus::build(CorpusConfig::tiny());
    let mut engine = iflex::engine::Engine::new(c.store.clone());
    let prog = parse_program(
        r#"
        a(x) :- ghost(x).
        b(y) :- a(y), numeric(z) = yes.
    "#,
    )
    .unwrap();
    match engine.run(&prog) {
        Err(iflex::engine::EngineError::Validation(errs)) => {
            assert!(errs.len() >= 2, "{errs:?}");
        }
        other => panic!("expected Validation, got {other:?}"),
    }
}

#[test]
fn explain_matches_runtime_behaviour() {
    let c = Corpus::build(CorpusConfig::tiny());
    let task = c.task(TaskId::T6, Some(20));
    let engine = task.engine(&c);
    let text = engine.explain(&task.program).unwrap();
    // the similarity join is compiled above a cross join with per-side
    // extraction below it
    assert!(text.contains("Filter[similar"));
    assert!(text.contains("CrossJoin"));
    let filter_at = text.find("Filter[similar").unwrap();
    let join_at = text.find("CrossJoin").unwrap();
    assert!(filter_at < join_at);
}

#[test]
fn multiple_rules_same_head_union() {
    // a predicate defined by two rules is the union of both results
    let c = Corpus::build(CorpusConfig::tiny());
    let imdb: Vec<_> = c.movies.imdb.iter().take(5).map(|(d, _)| *d).collect();
    let ebert: Vec<_> = c.movies.ebert.iter().take(5).map(|(d, _)| *d).collect();
    let mut engine = iflex::engine::Engine::new(c.store.clone());
    engine.add_doc_table("imdb", &imdb);
    engine.add_doc_table("ebert", &ebert);
    let prog = parse_program(
        r#"
        titles(t) :- imdb(x), eb(#x, t).
        titles(t) :- ebert(y), ei(#y, t).
        eb(#x, t) :- from(#x, t), bold-font(t) = distinct-yes.
        ei(#y, t) :- from(#y, t), italic-font(t) = distinct-yes.
    "#,
    )
    .unwrap();
    let result = engine.run(&prog).unwrap();
    assert_eq!(result.len(), 10, "5 bold + 5 italic titles");
}

#[test]
fn annotate_paths_agree_on_singleton_keys() {
    // the exact BAnnotate and the compact-direct ψ produce the same value
    // sets when grouping keys are exact (the common case)
    use iflex::engine::AnnotatePolicy;
    let c = Corpus::build(CorpusConfig::tiny());
    let imdb: Vec<_> = c.movies.imdb.iter().take(8).map(|(d, _)| *d).collect();
    let prog = parse_program(
        r#"
        q(x, <v>) :- imdb(x), e(#x, v).
        e(#x, v) :- from(#x, v), numeric(v) = yes.
    "#,
    )
    .unwrap();
    let run_with = |policy: AnnotatePolicy| {
        let mut engine = iflex::engine::Engine::new(c.store.clone());
        engine.add_doc_table("imdb", &imdb);
        engine.limits.annotate_policy = policy;
        engine.run(&prog).unwrap()
    };
    let exact = run_with(AnnotatePolicy::ForceExact);
    let compact = run_with(AnnotatePolicy::ForceCompact);
    assert_eq!(exact.len(), compact.len());
    let store = &c.store;
    let canon = |t: &iflex::ctable::CompactTable| -> Vec<(String, std::collections::BTreeSet<String>)> {
        let mut rows: Vec<_> = t
            .tuples()
            .iter()
            .map(|tup| {
                (
                    tup.cells[0]
                        .singleton(store)
                        .unwrap()
                        .as_text(store)
                        .to_string(),
                    tup.cells[1]
                        .values(store)
                        .map(|v| v.as_text(store).to_string())
                        .collect(),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(canon(&exact), canon(&compact));
}

#[test]
fn reuse_off_gives_identical_results() {
    let c = Corpus::build(CorpusConfig::tiny());
    let task = c.task(TaskId::T1, Some(20));
    let run_with = |reuse: bool| {
        let mut engine = task.engine(&c);
        engine.limits.reuse_enabled = reuse;
        engine.run(&task.program).unwrap();
        engine.run(&task.program).unwrap()
    };
    assert_eq!(run_with(true), run_with(false));
}

#[test]
fn parallel_and_sequential_joins_agree() {
    // Limits::threads only changes wall clock, never results.
    let c = Corpus::build(CorpusConfig::tiny());
    for id in [TaskId::T6, TaskId::T9] {
        let task = c.task(id, Some(30));
        let run_with = |threads: usize| {
            let mut engine = task.engine(&c);
            engine.limits.threads = threads;
            let t = engine.run(&task.program).unwrap();
            let store = engine.store();
            let mut rows: Vec<String> = t
                .tuples()
                .iter()
                .map(|tup| {
                    tup.cells
                        .iter()
                        .map(|c| {
                            let mut vs: Vec<String> =
                                c.values(store).map(|v| v.as_text(store).to_string()).collect();
                            vs.sort();
                            vs.join("|")
                        })
                        .collect::<Vec<_>>()
                        .join(";")
                })
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(run_with(1), run_with(4), "{id:?}");
    }
}
