//! Integration tests of fault-tolerant execution: every injection site
//! degrades gracefully — the run returns `Ok` with the degradation
//! recorded in `ExecStats` and a superset-safe widened result — and the
//! process never aborts.

use iflex::engine::{fault, PlanError};
use iflex::prelude::*;
use std::error::Error as _;
use std::sync::Arc;

fn engine_with_pages(n: usize) -> (Engine, Vec<iflex::text::DocId>) {
    let mut store = DocumentStore::new();
    let mut ids = Vec::new();
    for i in 0..n {
        ids.push(store.add_markup(&format!("row {} val <b>{}</b>", i, (i + 1) * 10)));
    }
    let mut eng = Engine::new(Arc::new(store));
    eng.add_doc_table("pages", &ids);
    (eng, ids)
}

fn extraction_program() -> Program {
    parse_program(
        "q(x, v) :- pages(x), e(#x, v).\n\
         e(#x, v) :- from(#x, v), numeric(v) = yes.",
    )
    .unwrap()
}

#[test]
fn rule_panic_is_contained_and_recorded() {
    let (mut eng, _) = engine_with_pages(3);
    eng.fault.arm(
        fault::site::EVAL_RULE,
        Trigger::Nth(0),
        Fault::Panic("kaboom".into()),
        7,
    );
    let result = eng.run(&extraction_program()).expect("panic is contained");
    assert!(eng.stats.degraded_by(DegradeCause::RulePanic));
    let d = &eng.stats.degradations[0];
    assert!(d.truncated.contains("kaboom"), "payload survives: {d}");
    assert!(!result.is_empty());
    assert!(result.tuples().iter().any(|t| t.maybe));
}

#[test]
fn join_site_fault_degrades_that_rule() {
    let (mut eng, ids) = engine_with_pages(3);
    eng.add_doc_table("others", &ids);
    eng.fault.arm(fault::site::JOIN_TUPLE, Trigger::Nth(0), Fault::TooLarge, 7);
    let prog = parse_program("q(x, y) :- pages(x), others(y).").unwrap();
    let result = eng.run(&prog).expect("join fault degrades");
    assert!(eng.stats.degraded_by(DegradeCause::Budget));
    assert!(!result.is_empty());
}

#[test]
fn generator_site_fault_degrades() {
    let (mut eng, _) = engine_with_pages(3);
    eng.procs_mut().register_generator("gen", 1, |_, args| {
        let Some(Value::Span(x)) = args.first() else {
            return vec![];
        };
        vec![vec![Value::Span(*x)]]
    });
    eng.fault.arm(
        fault::site::GENERATOR,
        Trigger::Nth(0),
        Fault::Panic("generator died".into()),
        7,
    );
    let prog = parse_program("q(v) :- pages(x), gen(#x, v).").unwrap();
    let result = eng.run(&prog).expect("generator fault degrades");
    assert!(eng.stats.degraded_by(DegradeCause::RulePanic));
    assert!(!result.is_empty());
}

#[test]
fn annotate_site_fault_degrades() {
    let (mut eng, _) = engine_with_pages(3);
    eng.fault.arm(
        fault::site::ANNOTATE,
        Trigger::Nth(0),
        Fault::DeadlineExpired,
        7,
    );
    let prog = parse_program(
        "q(x, <v>) :- pages(x), e(#x, v).\n\
         e(#x, v) :- from(#x, v), numeric(v) = yes.",
    )
    .unwrap();
    let result = eng.run(&prog).expect("annotate fault degrades");
    assert!(eng.stats.degraded_by(DegradeCause::Deadline));
    assert!(!result.is_empty());
}

#[test]
fn cancellation_is_cooperative_and_superset_safe() {
    let (mut eng, _) = engine_with_pages(3);
    let token = eng.budget.cancel_token();
    token.cancel(); // cancelled before the run even starts
    let result = eng.run(&extraction_program()).expect("cancel degrades");
    assert!(eng.stats.degraded_by(DegradeCause::Cancelled));
    assert!(!result.is_empty());
    // the token resets for the next run
    token.reset();
    let _ = eng.run(&extraction_program()).unwrap();
    assert!(!eng.stats.degraded());
}

#[test]
fn degraded_results_are_never_cached() {
    let (mut eng, _) = engine_with_pages(3);
    // fires exactly once: first run degrades, second must re-evaluate
    eng.fault.arm(fault::site::EVAL_RULE, Trigger::Nth(0), Fault::TooLarge, 7);
    let prog = extraction_program();
    let degraded = eng.run(&prog).unwrap();
    assert!(eng.stats.degraded());
    let exact = eng.run(&prog).unwrap();
    assert!(!eng.stats.degraded(), "retry after the fault is exact");
    assert_ne!(
        exact.tuples(),
        degraded.tuples(),
        "the widened result must not be served from the cache"
    );
}

#[test]
fn deadline_zero_run_completes_quickly_and_degrades() {
    let (mut eng, _) = engine_with_pages(5);
    eng.budget.deadline = Some(std::time::Duration::ZERO);
    let t0 = std::time::Instant::now();
    let result = eng.run(&extraction_program()).expect("deadline degrades");
    assert!(eng.stats.degraded_by(DegradeCause::Deadline));
    assert!(!result.is_empty());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "expired run must drain fast"
    );
}

#[test]
fn strict_mode_surfaces_hard_errors() {
    let (mut eng, _) = engine_with_pages(3);
    eng.limits.degrade = false;
    eng.fault.arm(
        fault::site::EVAL_RULE,
        Trigger::Nth(0),
        Fault::Panic("strict".into()),
        7,
    );
    match eng.run(&extraction_program()) {
        Err(EngineError::RulePanic(msg)) => assert!(msg.contains("strict")),
        other => panic!("expected RulePanic, got {other:?}"),
    }
}

#[test]
fn engine_errors_chain_sources() {
    let planned = EngineError::Plan(PlanError::Internal {
        rule: "q(x) :- pages(x).".into(),
        detail: "test".into(),
    });
    assert!(planned.source().is_some(), "plan errors expose their cause");
    assert!(EngineError::Deadline.source().is_none());
    assert!(EngineError::Cancelled.source().is_none());
    assert!(EngineError::TooLarge("x".into()).source().is_none());
    // every variant renders
    for e in [
        EngineError::Deadline,
        EngineError::Cancelled,
        EngineError::RulePanic("p".into()),
        EngineError::Internal("i".into()),
    ] {
        assert!(!e.to_string().is_empty());
    }
}

#[test]
fn memo_lookup_site_fault_degrades_that_rule_only() {
    let (mut eng, _) = engine_with_pages(3);
    let prog = extraction_program();
    // Warm the cache with an exact run, then poison the next lookup.
    let exact = eng.run(&prog).unwrap();
    assert!(!eng.stats.degraded());
    eng.fault.arm(
        fault::site::MEMO_LOOKUP,
        Trigger::Nth(0),
        Fault::Panic("cache lookup died".into()),
        7,
    );
    let degraded = eng.run(&prog).expect("lookup fault degrades, never aborts");
    assert!(eng.stats.degraded_by(DegradeCause::RulePanic));
    let d = &eng.stats.degradations[0];
    assert_eq!(
        d.site.as_deref(),
        Some(fault::site::MEMO_LOOKUP),
        "degradation is attributed to the lookup site: {d}"
    );
    assert!(!degraded.is_empty(), "superset-safe stand-in survives");
    // The fault fired once; the next run is exact again and equals the
    // original (the widened result was never cached).
    let retry = eng.run(&prog).unwrap();
    assert!(!eng.stats.degraded());
    assert_eq!(retry.tuples(), exact.tuples());
}

#[test]
fn memo_lookup_io_fault_in_strict_mode_is_a_hard_error() {
    let (mut eng, _) = engine_with_pages(3);
    let prog = extraction_program();
    eng.run(&prog).unwrap();
    eng.limits.degrade = false;
    eng.fault.arm(
        fault::site::MEMO_LOOKUP,
        Trigger::Nth(0),
        Fault::TooLarge,
        7,
    );
    match eng.run(&prog) {
        Err(EngineError::TooLarge(_)) => {}
        other => panic!("expected TooLarge from the lookup site, got {other:?}"),
    }
}
